"""The incremental fault-simulation session (repro.sim.session).

The contract under test: whatever sequence of queries a client issues,
with whatever mix of checkpoint resumes, fault drops and repacks the
session performs internally, every answer is bit-identical to a fresh
:class:`PackedFaultSimulator` run from cycle 0 — while simulating fewer
cycles.
"""

import random

import pytest

from repro import FlowConfig, PackedFaultSimulator, SimSession, s27
from repro.circuit import insert_scan, random_circuit
from repro.compaction.base import CompactionOracle
from repro.compaction.omission import omission_compact
from repro.compaction.restoration import restoration_compact
from repro.core.pipeline import generation_flow
from repro.faults.collapse import collapse_faults


def random_vectors(circuit, count, rng):
    return [
        tuple(rng.randint(0, 1) for _ in circuit.inputs)
        for _ in range(count)
    ]


def reference_times(circuit, faults, vectors):
    """Ground truth: fresh packed simulator, full run from reset."""
    sim = PackedFaultSimulator(circuit, faults)
    return dict(sim.run(list(vectors)).detection_time)


def _edit_schedule(vectors, rng):
    """A mixed workload of full runs, prefixes, suffix edits and
    re-queries — the access pattern compaction procedures produce."""
    n = len(vectors)
    schedule = [list(vectors)]
    schedule.append(list(vectors[: n // 2]))          # prefix re-query
    schedule.append(list(vectors))                    # back to full
    edited = list(vectors)
    edited[n // 3] = tuple(1 - v for v in edited[n // 3])
    schedule.append(edited)                           # mid-sequence edit
    schedule.append(edited[: n - 2])                  # prefix of the edit
    omitted = edited[: n // 2] + edited[n // 2 + 1:]  # vector omission
    schedule.append(omitted)
    schedule.append(list(rng.choice([vectors, edited, omitted])))
    return schedule


CIRCUITS = {
    "s27": lambda: s27(),
    "synthetic": lambda: random_circuit(
        "sess_synth", num_inputs=4, num_flops=6, num_gates=40, seed=77
    ),
}


@pytest.fixture(params=sorted(CIRCUITS))
def circuit(request):
    return CIRCUITS[request.param]()


class TestResumeEqualsRestart:
    def test_detection_times_bit_identical(self, circuit):
        """Every detection_times answer across a mixed edit workload
        matches a fresh cycle-0 simulation exactly."""
        faults = collapse_faults(circuit)
        rng = random.Random(5)
        vectors = random_vectors(circuit, 40, rng)
        session = SimSession(circuit, faults)
        for query in _edit_schedule(vectors, rng):
            assert session.detection_times(query) == \
                reference_times(circuit, faults, query)

    def test_detected_mask_bit_identical(self, circuit):
        faults = collapse_faults(circuit)
        rng = random.Random(6)
        vectors = random_vectors(circuit, 30, rng)
        session = SimSession(circuit, faults)
        for query in _edit_schedule(vectors, rng):
            expected = session.mask_of(
                reference_times(circuit, faults, query)
            )
            assert session.detected_mask(query) == expected

    def test_incremental_simulates_fewer_cycles(self, circuit):
        """The same workload costs strictly fewer simulated cycles with
        checkpointing than with cycle-0 restarts."""
        faults = collapse_faults(circuit)
        rng = random.Random(7)
        vectors = random_vectors(circuit, 40, rng)
        schedule = _edit_schedule(vectors, rng)

        def cycles(incremental):
            session = SimSession(circuit, faults, incremental=incremental)
            for query in schedule:
                session.detection_times(query)
            return session.cycles_simulated

        assert cycles(True) < cycles(False)

    def test_counters_track_resumes(self, circuit):
        faults = collapse_faults(circuit)
        session = SimSession(circuit, faults)
        vectors = random_vectors(circuit, 20, random.Random(8))
        session.detection_times(vectors)
        assert session.checkpoint_misses == 1  # cold start
        session.detection_times(vectors[:15])  # prefix: resume
        assert session.checkpoint_hits >= 1
        assert session.cycles_simulated < 35


class TestFaultDropping:
    def test_dropping_never_changes_coverage(self, circuit):
        """Property: randomly dropping detected faults between queries
        never changes the reported detections for the still-live part,
        and restore_dropped recovers full-universe answers."""
        faults = collapse_faults(circuit)
        rng = random.Random(9)
        vectors = random_vectors(circuit, 30, rng)
        truth = reference_times(circuit, faults, vectors)

        session = SimSession(circuit, faults)
        truth_mask = session.mask_of(truth)
        for _round in range(6):
            detected = session.detected_mask(vectors)
            assert detected == truth_mask & session.live_mask
            # Drop a random subset of what is detected (possibly enough
            # to trigger a geometric repack).
            candidates = session.faults_of(detected)
            if candidates:
                sample = rng.sample(
                    candidates, rng.randint(1, len(candidates))
                )
                session.drop(session.mask_of(sample))
        session.restore_dropped()
        assert session.detected_mask(vectors) == truth_mask
        assert session.detection_times(vectors) == truth

    def test_drop_rejects_queries_for_dropped_targets(self, circuit):
        faults = collapse_faults(circuit)
        session = SimSession(circuit, faults)
        vectors = random_vectors(circuit, 15, random.Random(10))
        detected = session.detected_mask(vectors)
        if not detected:
            pytest.skip("nothing detected on this circuit/seed")
        session.drop(detected)
        with pytest.raises(ValueError):
            session.detected_mask(vectors, target_mask=detected)

    def test_dropped_counter(self, circuit):
        faults = collapse_faults(circuit)
        session = SimSession(circuit, faults)
        vectors = random_vectors(circuit, 15, random.Random(11))
        detected = session.detected_mask(vectors)
        dropped = session.drop(detected)
        assert dropped == detected
        assert session.faults_dropped == bin(detected).count("1")


class TestOmissionPerfGuard:
    """The ISSUE acceptance bar: on the s27 generation flow, incremental
    omission performs >= 2x fewer simulated cycles than the cycle-0
    restart baseline, with identical results."""

    @pytest.fixture(scope="class")
    def s27_flow(self):
        return generation_flow(s27(), FlowConfig(seed=1, compact=False))

    def _compact(self, flow, incremental):
        circuit = flow.scan_circuit.circuit
        oracle = CompactionOracle(circuit, flow.faults,
                                  incremental=incremental)
        restored = restoration_compact(
            circuit, flow.raw, flow.faults, oracle=oracle)
        before = oracle.session.cycles_simulated
        omitted = omission_compact(
            circuit, restored.sequence, flow.faults, oracle=oracle)
        return omitted, oracle.session.cycles_simulated - before

    def test_incremental_at_least_2x_fewer_cycles(self, s27_flow):
        result_inc, cycles_inc = self._compact(s27_flow, incremental=True)
        result_base, cycles_base = self._compact(s27_flow, incremental=False)
        assert cycles_inc * 2 <= cycles_base
        # Identical final sequence, coverage and detection accounting.
        assert list(result_inc.sequence.vectors) == \
            list(result_base.sequence.vectors)
        assert result_inc.omitted_count == result_base.omitted_count
        assert result_inc.detected == result_base.detected
        assert result_inc.extra_detected == result_base.extra_detected

    def test_identical_detection_times(self, s27_flow):
        """The compacted sequence yields the same detection times under
        both modes (and under a fresh simulator)."""
        result_inc, _ = self._compact(s27_flow, incremental=True)
        circuit = s27_flow.scan_circuit.circuit
        times = reference_times(
            circuit, s27_flow.faults, result_inc.sequence.vectors)
        session = SimSession(circuit, s27_flow.faults)
        assert session.detection_times(
            list(result_inc.sequence.vectors)) == times


class TestScanTestMask:
    def test_matches_raw_simulator(self):
        """scan_test_mask == manual load_state + step + ff effects."""
        from repro.atpg.scan_sim import scan_test_detections
        from repro.atpg.scan_seq import SecondApproachATPG, \
            SecondApproachConfig

        circuit = s27()
        scan_circuit = insert_scan(circuit)
        baseline = SecondApproachATPG(
            circuit, config=SecondApproachConfig(seed=4)).generate()
        faults = collapse_faults(circuit)
        sim = PackedFaultSimulator(circuit, faults)
        session = SimSession(circuit, faults)
        assert scan_circuit is not None  # scan metadata exercised upstream
        for test in baseline.test_set:
            expected = scan_test_detections(sim, test)
            assert session.scan_test_mask(test.scan_in, test.vectors) == \
                expected
