"""Extended compaction procedures: overlapped restoration with segment
pruning [24] and state-repetition subsequence removal."""

import pytest

from repro.atpg import SeqATPGConfig
from repro.circuit import Circuit, FlipFlop, Gate, insert_scan, s27
from repro.compaction import (
    CompactionOracle,
    omission_compact,
    overlapped_restoration_compact,
    restoration_compact,
    subsequence_removal_compact,
)
from repro.core import ScanAwareATPG
from repro.faults import collapse_faults
from repro.sim import PackedFaultSimulator
from repro.testseq import TestSequence
from tests.util import random_vectors


@pytest.fixture(scope="module")
def s27_scan_case():
    sc = insert_scan(s27())
    faults = collapse_faults(sc.circuit)
    result = ScanAwareATPG(sc, faults, config=SeqATPGConfig(seed=1)).generate()
    return sc.circuit, faults, result.sequence


def detected_set(circuit, faults, sequence):
    sim = PackedFaultSimulator(circuit, faults)
    return set(sim.run(list(sequence)).detection_time)


class TestOverlappedRestoration:
    def test_preserves_detections(self, s27_scan_case):
        circuit, faults, sequence = s27_scan_case
        result = overlapped_restoration_compact(circuit, sequence, faults)
        before = detected_set(circuit, faults, sequence)
        after = detected_set(circuit, faults, result.sequence)
        assert before <= after

    def test_competitive_with_plain_restoration(self, s27_scan_case):
        """Pruning usually beats plain restoration but the greedy
        interaction (a pruned span changes later faults' needs) means no
        per-case guarantee; on this deterministic case it wins or ties,
        and it must never exceed the raw length."""
        circuit, faults, sequence = s27_scan_case
        oracle = CompactionOracle(circuit, faults)
        plain = restoration_compact(circuit, sequence, faults, oracle=oracle)
        pruned = overlapped_restoration_compact(circuit, sequence, faults,
                                                oracle=oracle)
        assert len(pruned.sequence) <= len(plain.sequence)
        assert len(pruned.sequence) <= len(sequence)

    def test_kept_indices_form_subsequence(self, s27_scan_case):
        circuit, faults, sequence = s27_scan_case
        result = overlapped_restoration_compact(circuit, sequence, faults)
        assert result.sequence.vectors == tuple(
            sequence[i] for i in result.kept_indices
        )

    def test_random_sequence(self):
        """Works on arbitrary sequences, not just ATPG output."""
        from repro.circuit import random_circuit

        circuit = random_circuit("ov", 4, 6, 40, seed=61)
        faults = collapse_faults(circuit)
        sequence = TestSequence.for_circuit(
            circuit, random_vectors(circuit, 60, seed=6), scan_sel=None
        )
        result = overlapped_restoration_compact(circuit, sequence, faults)
        before = detected_set(circuit, faults, sequence)
        after = detected_set(circuit, faults, result.sequence)
        assert before <= after
        assert len(result.sequence) <= len(sequence)


class TestSubsequenceRemoval:
    @staticmethod
    def looping_case():
        """A resettable 2-bit counter plus a long idle loop in the middle
        of its test sequence — prime subsequence-removal material."""
        circuit = Circuit(
            "ctr", ["inc", "rst"], ["msb"],
            [
                Gate("nrst", "NOT", ("rst",)),
                Gate("t0", "XOR", ("q0", "inc")),
                Gate("d0", "AND", ("t0", "nrst")),
                Gate("carry", "AND", ("q0", "inc")),
                Gate("t1", "XOR", ("q1", "carry")),
                Gate("d1", "AND", ("t1", "nrst")),
                Gate("msb", "BUF", ("q1",)),
            ],
            [FlipFlop("q0", "d0"), FlipFlop("q1", "d1")],
        )
        # reset, then idle (state repeats!), then count.
        vectors = [(0, 1)] + [(0, 0)] * 10 + [(1, 0)] * 4
        sequence = TestSequence.for_circuit(circuit, vectors, scan_sel=None)
        return circuit, sequence

    def test_removes_idle_loop(self):
        """With the required set restricted to faults the loop-free core
        already detects, the idle span is a pure state-repetition loop
        and must go.  (Against the full universe the idle cycles *do*
        detect faults — e.g. inc stuck-at-1 counts during idle — and the
        remover correctly refuses; see test_refuses_useful_loop.)"""
        circuit, sequence = self.looping_case()
        core = TestSequence.for_circuit(
            circuit, [sequence[0]] + list(sequence[11:]), scan_sel=None
        )
        faults = sorted(detected_set(circuit, collapse_faults(circuit), core))
        result = subsequence_removal_compact(circuit, sequence, faults)
        assert result.removed_spans, "the idle loop should be removed"
        assert len(result.sequence) < len(sequence)

    def test_refuses_useful_loop(self):
        """Idle cycles that carry detections (inc/SA1 makes the faulty
        machine count during idle) must survive."""
        circuit, sequence = self.looping_case()
        faults = collapse_faults(circuit)
        before = detected_set(circuit, faults, sequence)
        result = subsequence_removal_compact(circuit, sequence, faults)
        after = detected_set(circuit, faults, result.sequence)
        assert before <= after

    def test_preserves_detections(self):
        circuit, sequence = self.looping_case()
        faults = collapse_faults(circuit)
        before = detected_set(circuit, faults, sequence)
        result = subsequence_removal_compact(circuit, sequence, faults)
        after = detected_set(circuit, faults, result.sequence)
        assert before <= after

    def test_on_atpg_output(self, s27_scan_case):
        circuit, faults, sequence = s27_scan_case
        before = detected_set(circuit, faults, sequence)
        result = subsequence_removal_compact(circuit, sequence, faults)
        after = detected_set(circuit, faults, result.sequence)
        assert before <= after
        assert len(result.sequence) <= len(sequence)

    def test_composes_with_omission(self):
        circuit, sequence = self.looping_case()
        faults = collapse_faults(circuit)
        oracle = CompactionOracle(circuit, faults)
        loops = subsequence_removal_compact(circuit, sequence, faults,
                                            oracle=oracle)
        final = omission_compact(circuit, loops.sequence, faults,
                                 oracle=oracle)
        before = detected_set(circuit, faults, sequence)
        after = detected_set(circuit, faults, final.sequence)
        assert before <= after
        assert len(final.sequence) <= len(loops.sequence)

    def test_round_budget(self):
        circuit, sequence = self.looping_case()
        faults = collapse_faults(circuit)
        result = subsequence_removal_compact(circuit, sequence, faults,
                                             max_rounds=0)
        assert result.sequence == sequence
        assert not result.removed_spans
