"""VCD / STIL export of test sequences, plus the packaged c17 netlist."""

import pytest

from repro.circuit import c17, s27, insert_scan
from repro.circuit.gates import ONE, X, ZERO
from repro.testseq import TestSequence, to_stil, to_vcd, write_stil, write_vcd

INPUTS = ("a", "b", "scan_sel")


def small_sequence():
    return TestSequence(
        INPUTS,
        [(ZERO, ONE, ZERO), (ZERO, ONE, ONE), (X, ZERO, ONE)],
        scan_sel="scan_sel",
    )


class TestVcd:
    def test_header_and_vars(self):
        text = to_vcd(small_sequence())
        assert "$timescale 1ns $end" in text
        for name in INPUTS:
            assert f" {name} $end" in text

    def test_only_changes_dumped(self):
        text = to_vcd(small_sequence())
        # `a` is 0 at t0 and t1: its code must appear once before #2.
        body = text.split("$enddefinitions $end")[1]
        t01 = body.split("#2")[0]
        a_code_line = [l for l in t01.splitlines() if l.startswith("0")]
        # a and scan_sel start at 0 -> two '0' changes at t0 only.
        assert len([l for l in a_code_line]) >= 2

    def test_x_values(self):
        text = to_vcd(small_sequence())
        assert "\nx" in text

    def test_timestamps_monotone(self):
        text = to_vcd(small_sequence())
        stamps = [int(line[1:]) for line in text.splitlines()
                  if line.startswith("#")]
        assert stamps == sorted(stamps)
        assert stamps[-1] == 3  # closing timestamp

    def test_with_circuit_responses(self):
        sc = insert_scan(s27())
        seq = TestSequence.for_circuit(
            sc.circuit, [(0,) * 6, (1,) * 6]
        )
        text = to_vcd(seq, circuit=sc.circuit)
        for po in sc.circuit.outputs:
            assert f" {po} $end" in text

    def test_circuit_mismatch(self):
        with pytest.raises(ValueError):
            to_vcd(small_sequence(), circuit=s27())

    def test_write_to_file(self, tmp_path):
        path = tmp_path / "seq.vcd"
        write_vcd(small_sequence(), path)
        assert path.read_text().startswith("$date")


class TestStil:
    def test_signals_declared(self):
        text = to_stil(small_sequence())
        assert '"a" In;' in text
        assert 'STIL 1.0;' in text

    def test_vector_lines(self):
        text = to_stil(small_sequence())
        assert '"_pi" = 010;' in text        # cycle 0
        assert '"_pi" = X01;' in text.replace("x", "X")  # cycle 2

    def test_expected_values_with_circuit(self):
        circuit = s27()
        seq = TestSequence.for_circuit(circuit, [(1, 1, 1, 1)] * 6,
                                       scan_sel=None)
        text = to_stil(seq, circuit=circuit)
        assert '"_po" =' in text
        # After synchronization the PO is binary: H or L appears.
        assert ("H" in text.split("cycle 5")[0].split("V {")[-1]
                or "L" in text)

    def test_pattern_name(self):
        text = to_stil(small_sequence(), pattern_name="myblock")
        assert 'Pattern "myblock"' in text

    def test_write_to_file(self, tmp_path):
        path = tmp_path / "seq.stil"
        write_stil(small_sequence(), path)
        assert "STIL" in path.read_text()


class TestC17:
    def test_exact_shape(self):
        c = c17()
        assert c.num_inputs == 5
        assert c.num_outputs == 2
        assert c.num_gates == 6
        assert all(g.kind == "NAND" for g in c.gates)

    def test_fully_testable(self):
        """Every collapsed fault of c17 is PODEM-testable (the classic
        teaching result)."""
        from repro.atpg import Podem
        from repro.faults import collapse_faults

        c = c17()
        podem = Podem(c)
        for fault in collapse_faults(c):
            assert podem.run(fault).found, f"{fault} must be testable"

    def test_known_response(self):
        from repro.sim import LogicSimulator

        sim = LogicSimulator(c17())
        # all-ones: G10=NAND(1,1)=0, G11=0, G16=NAND(1,0)=1,
        # G19=NAND(0,1)=1, G22=NAND(0,1)=1, G23=NAND(1,1)=0.
        assert sim.step((1, 1, 1, 1, 1)) == (ONE, ZERO)
