"""The two conventional scan approaches (first: PODEM per fault; second:
multi-vector tests) and the scan-test simulation semantics."""

import pytest

from repro.atpg import (
    CombScanATPG,
    SecondApproachATPG,
    SecondApproachConfig,
    scan_test_detections,
    scan_test_observability,
)
from repro.circuit import random_circuit, s27
from repro.faults import collapse_faults
from repro.sim import PackedFaultSimulator
from repro.testseq import ScanTest


class TestScanTestSimulation:
    def test_scan_in_is_exact(self, s27_circuit):
        """Conventional semantics: the scan-in state loads into every
        machine, including faulty ones (scan assumed ideal)."""
        faults = collapse_faults(s27_circuit)
        sim = PackedFaultSimulator(s27_circuit, faults)
        test = ScanTest((1, 0, 1), ((0, 0, 0, 0),))
        scan_test_detections(sim, test)
        # After the test the state was loaded and advanced one cycle; the
        # call must not raise and must return a mask subset.
        assert scan_test_detections(sim, test) & ~sim.fault_mask == 0

    def test_final_state_observed(self, s27_circuit):
        """A fault whose only symptom is a wrong next-state is detected
        through the closing scan-out."""
        faults = collapse_faults(s27_circuit)
        sim = PackedFaultSimulator(s27_circuit, faults)
        detected = 0
        for state in ((0, 0, 0), (1, 1, 1), (1, 0, 1)):
            for vec in ((0, 0, 0, 0), (1, 1, 1, 1), (0, 1, 0, 1)):
                detected |= scan_test_detections(
                    sim, ScanTest(state, (vec,))
                )
        po_only = 0
        sim2 = PackedFaultSimulator(s27_circuit, faults)
        for state in ((0, 0, 0), (1, 1, 1), (1, 0, 1)):
            for vec in ((0, 0, 0, 0), (1, 1, 1, 1), (0, 1, 0, 1)):
                sim2.load_state(state)
                po_only |= sim2.step(vec)
        # Scan-out observation strictly helps on s27.
        assert detected & ~po_only

    def test_observability_matches_ff_effects(self, s27_circuit):
        faults = collapse_faults(s27_circuit)
        sim = PackedFaultSimulator(s27_circuit, faults)
        sim.load_state((0, 1, 0))
        sim.step((1, 0, 1, 0))
        expected = 0
        for mask in sim.ff_effect_masks():
            expected |= mask
        assert scan_test_observability(sim) == expected & sim.fault_mask


class TestFirstApproach:
    @pytest.fixture(scope="class")
    def generated(self):
        circuit = s27()
        faults = collapse_faults(circuit)
        return circuit, faults, CombScanATPG(circuit, faults, seed=2).generate()

    def test_full_coverage_on_s27(self, generated):
        _c, faults, result = generated
        # D-pin branch faults are their own classes (the old D==Q merge
        # was unsound sequentially); PODEM targets them on the comb
        # view's pseudo outputs, so they must not dent the coverage.
        flop_pins = [f for f in faults if f.consumer in ("G5", "G6", "G7")]
        assert flop_pins
        assert result.coverage() == 100.0

    def test_single_vector_tests(self, generated):
        _c, _f, result = generated
        assert all(t.functional_cycles == 1 for t in result.test_set)

    def test_detections_confirmed_by_simulation(self, generated):
        circuit, faults, result = generated
        sim = PackedFaultSimulator(circuit, faults)
        for fault, index in list(result.detected_by.items())[:25]:
            mask = scan_test_detections(sim, result.test_set[index])
            assert mask & (1 << (faults.index(fault) + 1))

    def test_tests_are_binary(self, generated):
        from repro.circuit.gates import X

        _c, _f, result = generated
        for test in result.test_set:
            assert X not in test.scan_in
            assert all(X not in v for v in test.vectors)

    def test_keep_x_mode(self):
        from repro.circuit.gates import X

        circuit = s27()
        result = CombScanATPG(circuit, seed=2, keep_x=True).generate()
        has_x = any(
            X in test.scan_in or any(X in v for v in test.vectors)
            for test in result.test_set
        )
        assert has_x  # PODEM cubes leave unspecified positions

    def test_rejects_combinational(self, toy_comb_circuit):
        with pytest.raises(ValueError):
            CombScanATPG(toy_comb_circuit)


class TestSecondApproach:
    @pytest.fixture(scope="class")
    def generated(self):
        circuit = s27()
        faults = collapse_faults(circuit)
        config = SecondApproachConfig(seed=2)
        return circuit, faults, SecondApproachATPG(
            circuit, faults, config
        ).generate()

    def test_full_coverage_on_s27(self, generated):
        _c, _f, result = generated
        assert result.coverage() == 100.0

    def test_cycle_accounting(self, generated):
        _c, _f, result = generated
        n_sv = 3
        expected = sum(
            n_sv + t.functional_cycles for t in result.test_set
        ) + n_sv
        assert result.total_cycles() == expected

    def test_beats_or_matches_first_approach(self):
        """The second approach exists to reduce scan operations: on the
        same circuit it must not need more cycles than one-vector tests
        after the same compaction."""
        circuit = s27()
        faults = collapse_faults(circuit)
        first = CombScanATPG(circuit, faults, seed=2).generate()
        from repro.compaction import reverse_order_compact

        first_set, _ = reverse_order_compact(circuit, faults, first.test_set)
        second = SecondApproachATPG(
            circuit, faults, SecondApproachConfig(seed=2)
        ).generate()
        assert second.total_cycles() <= first_set.total_cycles() * 1.25

    def test_extension_capped(self):
        circuit = random_circuit("se", 4, 8, 50, seed=31)
        config = SecondApproachConfig(seed=1, max_test_length=3)
        result = SecondApproachATPG(circuit, config=config).generate()
        assert all(t.functional_cycles <= 3 for t in result.test_set)

    def test_compaction_flag(self):
        circuit = random_circuit("sc", 4, 8, 50, seed=32)
        faults = collapse_faults(circuit)
        loose = SecondApproachATPG(
            circuit, faults, SecondApproachConfig(seed=1, compact=False)
        ).generate()
        tight = SecondApproachATPG(
            circuit, faults, SecondApproachConfig(seed=1, compact=True)
        ).generate()
        assert len(tight.test_set) <= len(loose.test_set)

    def test_rejects_combinational(self, toy_comb_circuit):
        with pytest.raises(ValueError):
            SecondApproachATPG(toy_comb_circuit)
