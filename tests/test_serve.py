"""Tests for repro.serve — queue fairness, dedup keys, tenant stores,
the live daemon (dedup/cache/SSE/back-pressure), budgets and graceful
shutdown.

The dedup guarantee is the heart: payloads that differ only in speed
knobs collapse onto one job fingerprint, concurrent identical
submissions share one execution, and cache replays are bit-identical
to the original run.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import obs
from repro.cache.store import ResultStore
from repro.circuit import s27
from repro.circuit.bench import write_bench
from repro.core.config import FlowConfig
from repro.obs.journal import read_journal
from repro.serve import (
    DEFAULT_TENANT,
    FairQueue,
    QueueFull,
    ReproServer,
    ServeClient,
    ServeError,
    ServerConfig,
    SubmissionError,
    job_fingerprints,
    parse_submission,
    tenant_cache_dir,
    tenant_store,
    valid_tenant,
)
from repro.serve.jobs import canonical_submission, run_job
from repro.serve.store import SERVE_STAGE

S27_BENCH = write_bench(s27())


def submission(config=None, flow="generation", bench=S27_BENCH):
    return {"circuit": {"bench": bench, "name": "s27"},
            "flow": flow, "config": config or {}}


# -- fair queue ---------------------------------------------------------------


def test_fair_queue_fifo_within_tenant():
    queue = FairQueue()
    for item in "abc":
        queue.push("t1", item)
    assert [queue.pop(0)[1] for _ in range(3)] == ["a", "b", "c"]
    assert queue.pop(timeout=0.01) is None


def test_fair_queue_round_robin_across_tenants():
    queue = FairQueue()
    for item in range(3):
        queue.push("big", f"big{item}")
    queue.push("small", "small0")
    order = [queue.pop(0) for _ in range(4)]
    tenants = [tenant for tenant, _ in order]
    # The 1-deep tenant is served on the first rotation, not after the
    # burst.
    assert tenants.index("small") == 1
    assert [item for tenant, item in order if tenant == "big"] == \
        ["big0", "big1", "big2"]


def test_fair_queue_weights():
    queue = FairQueue()
    queue.set_weight("heavy", 2)
    for item in range(4):
        queue.push("heavy", f"h{item}")
        queue.push("light", f"l{item}")
    tenants = [queue.pop(0)[0] for _ in range(6)]
    # heavy takes 2 consecutive slots per turn, light takes 1.
    assert tenants == ["heavy", "heavy", "light", "heavy", "heavy", "light"]


def test_fair_queue_depth_limit_raises():
    queue = FairQueue(max_depth=2)
    queue.push("t", 1)
    queue.push("t", 2)
    with pytest.raises(QueueFull) as excinfo:
        queue.push("t", 3)
    assert excinfo.value.tenant == "t"
    assert queue.push("other", 1) == 1  # other tenants unaffected


def test_fair_queue_close_wakes_and_drains():
    queue = FairQueue()
    queue.push("t", "left-behind")
    results = []
    waiter = threading.Thread(
        target=lambda: (queue.pop(0), results.append(queue.pop(None))))
    waiter.start()
    time.sleep(0.05)
    queue.close()
    waiter.join(timeout=5)
    assert not waiter.is_alive()
    assert results == [None]
    with pytest.raises(RuntimeError):
        queue.push("t", "rejected")
    assert queue.drain() == []  # popped before close; nothing left


def test_fair_queue_drain_returns_leftovers():
    queue = FairQueue()
    queue.push("a", 1)
    queue.push("b", 2)
    queue.close()
    assert sorted(queue.drain()) == [("a", 1), ("b", 2)]
    assert queue.depth() == 0


# -- the dedup key (satellite: property test) ---------------------------------

SPEED_KNOBS = {
    "jobs": 4,
    "checkpoint_interval": 9,
    "incremental": False,
    "sim_backend": "packed",
    "cache_dir": "/tmp/some-cache",
    "run_index": "/tmp/some-index.sqlite",
}

SEMANTIC_KNOBS = {
    "seed": 7,
    "num_chains": 2,
    "compact": False,
    "classify_redundant": False,
    "use_scan_knowledge": False,
    "use_justification": False,
    "redundancy_backtrack_limit": 5,
    "max_omission_passes": 3,
}


def test_speed_knobs_do_not_move_the_job_fingerprint():
    base = job_fingerprints(*parse_submission(submission()))
    for knob, value in SPEED_KNOBS.items():
        varied = job_fingerprints(
            *parse_submission(submission({knob: value})))
        assert varied == base, f"speed knob {knob} moved the dedup key"


def test_semantic_knobs_split_the_job_fingerprint():
    base = job_fingerprints(*parse_submission(submission()))
    seen = {base}
    for knob, value in SEMANTIC_KNOBS.items():
        varied = job_fingerprints(
            *parse_submission(submission({knob: value})))
        assert varied != base, f"semantic knob {knob} did not split the key"
        seen.add(varied)
    # Every semantic variation is distinct from every other.
    assert len(seen) == len(SEMANTIC_KNOBS) + 1


def test_flow_splits_the_job_fingerprint():
    gen = job_fingerprints(*parse_submission(submission()))
    trans = job_fingerprints(
        *parse_submission(submission(flow="translation")))
    assert gen != trans


def test_netlist_form_matches_bench_form():
    circuit = s27()
    netlist = {
        "name": circuit.name,
        "inputs": list(circuit.inputs),
        "outputs": list(circuit.outputs),
        "gates": [[g.output, g.kind, list(g.inputs)]
                  for g in circuit.gates],
        "flops": [[f.q, f.d] for f in circuit.flops],
    }
    via_bench = job_fingerprints(*parse_submission(submission()))
    via_netlist = job_fingerprints(*parse_submission(
        {"circuit": {"netlist": netlist}, "config": {}}))
    assert via_bench == via_netlist


def test_parse_submission_rejects_garbage():
    with pytest.raises(SubmissionError):
        parse_submission(["not", "an", "object"])
    with pytest.raises(SubmissionError, match="unknown config field"):
        parse_submission(submission({"bogus_knob": 1}))
    with pytest.raises(SubmissionError, match="unknown flow"):
        parse_submission(submission(flow="mystery"))
    with pytest.raises(SubmissionError, match="exactly one"):
        parse_submission({"circuit": {}, "config": {}})
    with pytest.raises(SubmissionError, match="bad circuit"):
        parse_submission(submission(bench="y = NOT("))
    with pytest.raises(SubmissionError, match="bad config"):
        parse_submission(submission({"num_chains": 0}))


def test_canonical_submission_round_trips():
    circuit, cfg, flow = parse_submission(
        submission({"seed": 3, "jobs": 2}))
    canonical = canonical_submission(circuit, cfg, flow)
    again = parse_submission(canonical)
    assert job_fingerprints(*again) == job_fingerprints(circuit, cfg, flow)


# -- tenant stores ------------------------------------------------------------


def test_valid_tenant_names():
    assert valid_tenant("team-a")
    assert valid_tenant("Team.B_2")
    for bad in ("", ".", "..", "a/b", "../etc", "tenants", "-lead",
                "x" * 65):
        assert not valid_tenant(bad), bad


def test_default_tenant_uses_base_store(tmp_path):
    assert tenant_cache_dir(tmp_path, DEFAULT_TENANT) == tmp_path


def test_tenant_overlay_reads_through_and_isolates_writes(tmp_path):
    base = ResultStore(tmp_path)
    base.put(SERVE_STAGE, "c" * 64, "f" * 64, {"from": "base"})
    overlay = tenant_store(tmp_path, "team-a")
    # Read-through: the tenant sees what the shared layer computed.
    assert overlay.get(SERVE_STAGE, "c" * 64, "f" * 64) == {"from": "base"}
    # Writes stay inside the tenant's namespace.
    overlay.put(SERVE_STAGE, "d" * 64, "e" * 64, {"from": "team-a"})
    assert base.get(SERVE_STAGE, "d" * 64, "e" * 64) is None
    assert overlay.get(SERVE_STAGE, "d" * 64, "e" * 64) == \
        {"from": "team-a"}
    other = tenant_store(tmp_path, "team-b")
    assert other.get(SERVE_STAGE, "d" * 64, "e" * 64) is None


# -- worker task --------------------------------------------------------------


def test_run_job_reports_failure_as_result(tmp_path):
    outcome = run_job({
        "job_id": "bad", "submission": {"circuit": {"bench": "y = NOT("}},
        "journal": str(tmp_path / "j.jsonl")})
    assert outcome["status"] == "failed"
    assert "bad circuit" in outcome["error"]


def test_run_job_wall_budget_interrupts(tmp_path):
    from repro.experiments import suite

    slow = write_bench(suite.build_circuit("s298"))
    outcome = run_job({
        "job_id": "slow",
        "submission": submission({"seed": 1}, bench=slow),
        "journal": str(tmp_path / "j.jsonl"),
        "wall_budget": 0.1,
    })
    assert outcome["status"] == "budget_exceeded"
    assert outcome["budget"]["breached"] == "wall"
    # The interrupted job still left a journal behind.
    assert (tmp_path / "j.jsonl").exists()


def test_in_process_budget_breach_is_recorded_not_signalled(tmp_path):
    """The serial fallback runs run_job inside the daemon process —
    a budget breach there must never deliver SIGINT (it would hit the
    server, not the job): the flow completes and the outcome carries an
    unenforced-budget note."""
    from repro.serve.app import _serial_run_job

    sigints = []
    recorder = lambda *a: sigints.append(a)  # noqa: E731
    previous = signal.signal(signal.SIGINT, recorder)
    try:
        outcome = _serial_run_job({
            "job_id": "serial",
            "submission": submission({"seed": 1}),
            "journal": str(tmp_path / "j.jsonl"),
            "wall_budget": 0.0001,   # breaches on the first poll
        })
        handler_after = signal.getsignal(signal.SIGINT)
    finally:
        signal.signal(signal.SIGINT, previous)
    assert not sigints, "in-process budget monitor raised SIGINT"
    assert outcome["status"] == "done"
    assert outcome["budget"] == {"breached": "wall", "enforced": False}
    # In-process runs must leave the caller's signal disposition alone.
    assert handler_after is recorder


# -- live daemon --------------------------------------------------------------


@pytest.fixture
def live_server(tmp_path):
    server = ReproServer(ServerConfig(
        port=0, workers=2, state_dir=str(tmp_path / "state"),
        drain_timeout=15.0))
    started = threading.Event()

    def run():
        started.set()
        asyncio.run(server.run())

    with obs.session():
        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        deadline = time.monotonic() + 10
        while server.port == server.config.port:
            assert time.monotonic() < deadline, "server never bound"
            time.sleep(0.02)
        try:
            yield server
        finally:
            server.request_shutdown()
            thread.join(timeout=30)
            assert not thread.is_alive()


def test_concurrent_identical_submissions_share_one_execution(live_server):
    client = ServeClient("127.0.0.1", live_server.port)
    responses = []

    def fire():
        responses.append(client.submit(S27_BENCH, config={"seed": 5}))

    threads = [threading.Thread(target=fire) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    sources = sorted(r["source"] for r in responses)
    assert sources.count("new") == 1, sources
    assert all(s in ("new", "dedup", "cache") for s in sources)
    job_ids = {r["job_id"] for r in responses if r["source"] != "cache"}
    assert len(job_ids) == 1      # deduped submissions joined the job

    finals = [client.wait(r["job_id"]) for r in responses]
    assert all(f["status"] == "done" for f in finals)
    results = [f["result"] for f in finals]
    assert all(r == results[0] for r in results), "results not identical"

    # Exactly one execution: exactly one journal across all job dirs.
    jobs_dir = Path(live_server.config.state_dir) / "jobs"
    journals = list(jobs_dir.glob("*/journal.jsonl"))
    assert len(journals) == 1, journals

    counters = client.stats()["metrics"]["counters"]
    assert counters.get("serve.started", 0) == 1
    assert counters.get("serve.deduped", 0) + \
        counters.get("serve.cache_hits", 0) == 3


def test_warm_cache_hit_is_bit_identical_and_fast(live_server):
    client = ServeClient("127.0.0.1", live_server.port)
    first = client.submit(S27_BENCH, config={"seed": 9})
    assert first["source"] == "new"
    done = client.wait(first["job_id"])

    t0 = time.perf_counter()
    warm = client.submit(S27_BENCH,
                         config={"seed": 9, "checkpoint_interval": 7})
    elapsed = time.perf_counter() - t0
    assert warm["source"] == "cache"
    assert warm["result"] == done["result"]
    assert elapsed < 0.25, f"cache hit took {elapsed:.3f}s"
    counters = client.stats()["metrics"]["counters"]
    assert counters.get("serve.cache_hits", 0) >= 1
    assert counters.get("cache.hit", 0) >= 1


def test_sse_stream_follows_job_to_end(live_server):
    client = ServeClient("127.0.0.1", live_server.port)
    job = client.submit(S27_BENCH, config={"seed": 11})
    frames = list(client.events(job["job_id"]))
    kinds = [f["event"] for f in frames]
    assert kinds[-1] == "end"
    assert "journal" in kinds and "progress" in kinds
    assert frames[-1]["data"]["status"] == "done"
    assert frames[-1]["data"]["result"]["coverage"]["fault_coverage"] > 0
    # The journal frames include the flow's phase spans.
    spans = [f["data"] for f in frames
             if f["event"] == "journal"
             and f["data"].get("type") == "span.open"]
    assert any("pipeline" in s.get("data", {}).get("path", "")
               for s in spans)


def test_http_error_paths(live_server):
    client = ServeClient("127.0.0.1", live_server.port)
    with pytest.raises(ServeError) as excinfo:
        client.job("no-such-job")
    assert excinfo.value.status == 404
    bad_tenant = ServeClient("127.0.0.1", live_server.port,
                             tenant="../escape")
    with pytest.raises(ServeError) as excinfo:
        bad_tenant.submit(S27_BENCH)
    assert excinfo.value.status == 400
    with pytest.raises(ServeError) as excinfo:
        client.submit(S27_BENCH, config={"nope": 1})
    assert excinfo.value.status == 400


def test_healthz_and_stats_expose_pool_occupancy(live_server):
    client = ServeClient("127.0.0.1", live_server.port)
    health = client.health()
    assert health["status"] == "ok"
    assert set(health["pool"]) == {"workers", "busy", "pending"}
    job = client.submit(S27_BENCH, config={"seed": 13})
    client.wait(job["job_id"])
    stats = client.stats()
    gauges = stats["metrics"]["gauges"]
    assert "parallel.pool.workers" in gauges
    assert stats["pool"]["workers"] >= 1
    assert stats["jobs"].get("done", 0) >= 1


def test_back_pressure_returns_429(tmp_path):
    # No dispatchers running: admitted jobs stay queued, so the bounded
    # per-tenant queue fills deterministically.
    server = ReproServer(ServerConfig(
        port=0, workers=1, queue_depth=2,
        state_dir=str(tmp_path / "state")))
    with obs.session() as telemetry:
        for seed in (1, 2):
            status, _body = server.submit(submission({"seed": seed}),
                                          DEFAULT_TENANT)
            assert status == 202
        status, body = server.submit(submission({"seed": 3}),
                                     DEFAULT_TENANT)
        assert status == 429
        assert "full" in body["error"]
        # Back-pressure is per tenant: another tenant still gets in.
        status, _body = server.submit(submission({"seed": 3}), "team-b")
        assert status == 202
        counters = telemetry.metrics.snapshot()["counters"]
    assert counters.get("serve.rejected", 0) == 1
    assert counters.get("serve.queued", 0) == 3


def test_duplicate_submission_is_deduped_not_queued(tmp_path):
    server = ReproServer(ServerConfig(
        port=0, workers=1, queue_depth=1,
        state_dir=str(tmp_path / "state")))
    with obs.session():
        status1, body1 = server.submit(submission({"seed": 1}),
                                       DEFAULT_TENANT)
        # Queue is full (depth 1) — but an identical submission dedupes
        # instead of bouncing off the full queue.
        status2, body2 = server.submit(
            submission({"seed": 1, "jobs": 8}), "team-b")
    assert status1 == 202
    assert status2 == 200 and body2["source"] == "dedup"
    assert body2["job_id"] == body1["job_id"]


# -- graceful shutdown (satellite) -------------------------------------------


def test_sigterm_drains_running_job_cleanly(tmp_path):
    from repro.experiments import suite

    state = tmp_path / "state"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src") \
        + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--workers", "1", "--state", str(state)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, cwd=str(tmp_path))
    try:
        line = proc.stdout.readline()
        assert "listening on" in line, line
        port = int(line.rsplit(":", 1)[1])
        client = ServeClient("127.0.0.1", port, timeout=10)
        slow = write_bench(suite.build_circuit("s298"))
        job = client.submit(slow, config={"seed": 1})
        assert job["source"] == "new"
        # Give the dispatcher a moment to start the job, then kill the
        # daemon mid-run.
        deadline = time.monotonic() + 10
        while client.job(job["job_id"])["status"] == "queued":
            assert time.monotonic() < deadline
            time.sleep(0.05)
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
    assert proc.returncode == 0
    tail = proc.stdout.read()
    assert "repro-serve stopped" in line + tail

    # The drained job finished: its result is on disk and its journal
    # is complete and parseable.
    job_dir = state / "jobs" / job["job_id"]
    outcome = json.loads((job_dir / "result.json").read_text())
    assert outcome["status"] == "done"
    events = read_journal(job_dir / "journal.jsonl")
    assert events[-1]["type"] == "journal.close"

    # No orphan worker processes: nothing on the system still carries
    # this test's unique state-dir path in its command line.
    marker = str(state)
    orphans = []
    for pid_dir in Path("/proc").iterdir():
        if not pid_dir.name.isdigit() or int(pid_dir.name) == os.getpid():
            continue
        try:
            cmdline = (pid_dir / "cmdline").read_bytes()
        except OSError:
            continue
        if marker.encode() in cmdline:
            orphans.append(pid_dir.name)
    assert not orphans, f"orphan processes: {orphans}"


# -- budget enforcement against a main-thread daemon --------------------------


def test_budget_enforced_in_worker_daemon_survives(tmp_path):
    """E2E regression for SIGINT-based budget enforcement under fork:
    the daemon runs in its subprocess's *main thread* (so asyncio
    installs its SIGINT handler + wakeup fd, which fork-started workers
    inherit).  A budget breach must interrupt the *job* — not leak the
    signal into the parent loop and drain the whole server."""
    from repro.experiments import suite

    state = tmp_path / "state"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src") \
        + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--workers", "1", "--state", str(state),
         "--wall-budget", "0.5"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, cwd=str(tmp_path))
    try:
        line = proc.stdout.readline()
        assert "listening on" in line, line
        port = int(line.rsplit(":", 1)[1])
        client = ServeClient("127.0.0.1", port, timeout=10)
        slow = write_bench(suite.build_circuit("s298"))
        job = client.submit(slow, config={"seed": 1})
        final = client.wait(job["job_id"], timeout=120)
        assert final["status"] == "budget_exceeded", final
        assert final["budget"]["breached"] == "wall", final
        # The daemon survived its own budget enforcement: it still
        # serves, and a cheap job still completes on the same worker.
        assert client.health()["status"] == "ok"
        quick = client.submit(S27_BENCH, config={"seed": 2})
        assert client.wait(quick["job_id"], timeout=120)["status"] == "done"
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
    assert proc.returncode == 0
    # The interrupted job left a parseable journal behind.
    events = read_journal(state / "jobs" / job["job_id"] / "journal.jsonl")
    assert events[-1]["type"] == "journal.close"


# -- registry bounds and request limits ---------------------------------------


@pytest.fixture
def bounded_server(tmp_path):
    server = ReproServer(ServerConfig(
        port=0, workers=1, state_dir=str(tmp_path / "state"),
        max_records=4, drain_timeout=15.0))
    started = threading.Event()

    def run():
        started.set()
        asyncio.run(server.run())

    with obs.session():
        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        deadline = time.monotonic() + 10
        while server.port == server.config.port:
            assert time.monotonic() < deadline, "server never bound"
            time.sleep(0.02)
        try:
            yield server
        finally:
            server.request_shutdown()
            thread.join(timeout=30)
            assert not thread.is_alive()


def test_cache_replays_do_not_grow_disk_or_registry(bounded_server):
    client = ServeClient("127.0.0.1", bounded_server.port)
    first = client.submit(S27_BENCH, config={"seed": 21})
    assert first["source"] == "new"
    done = client.wait(first["job_id"])

    for _ in range(10):
        warm = client.submit(S27_BENCH, config={"seed": 21})
        assert warm["source"] == "cache"
        assert warm["result"] == done["result"]
        # Replay records stay queryable until evicted.
        assert client.job(warm["job_id"])["status"] == "done"

    # One job directory on disk — replays provision nothing.
    jobs_dir = Path(bounded_server.config.state_dir) / "jobs"
    assert len(list(jobs_dir.iterdir())) == 1
    # The registry is bounded: terminal records aged out.
    with bounded_server._lock:
        assert len(bounded_server._jobs) <= 4
    # The executed job's record may itself have been evicted, but its
    # job directory keeps it readable.
    view = client.job(first["job_id"])
    assert view["status"] == "done"
    assert view["result"] == done["result"]


def test_oversized_content_length_is_rejected_before_buffering(
        bounded_server):
    import http.client

    conn = http.client.HTTPConnection(
        "127.0.0.1", bounded_server.port, timeout=10)
    try:
        conn.putrequest("POST", "/jobs")
        conn.putheader("Content-Type", "application/json")
        conn.putheader("Content-Length", str(10 ** 9))
        conn.endheaders()
        response = conn.getresponse()
        body = json.loads(response.read().decode("utf-8"))
    finally:
        conn.close()
    assert response.status == 413
    assert "body too large" in body["error"]


def test_header_bomb_closes_connection(bounded_server):
    import socket

    with socket.create_connection(
            ("127.0.0.1", bounded_server.port), timeout=10) as sock:
        chunks = b""
        try:
            sock.sendall(b"GET /healthz HTTP/1.1\r\n")
            for i in range(300):
                sock.sendall(f"x-pad-{i}: y\r\n".encode())
            sock.sendall(b"\r\n")
            # The server abandons the request without a response.
            while True:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                chunks += chunk
        except (BrokenPipeError, ConnectionResetError):
            pass  # the server already slammed the door — same outcome
    assert chunks == b""


def test_finish_publishes_to_tenants_attached_during_put(
        tmp_path, monkeypatch):
    """Closing the dedup window: the in-flight key must stay in the
    index until every attached tenant's store holds the result — a
    tenant attaching mid-put still gets its cache entry."""
    from repro.serve import app as serve_app

    server = ReproServer(ServerConfig(
        port=0, workers=1, state_dir=str(tmp_path / "state")))
    with obs.session():
        status, body = server.submit(submission({"seed": 1}), "team-a")
        assert status == 202
        record = server._jobs[body["job_id"]]
        real_tenant_store = serve_app.tenant_store

        def attaching_store(base, tenant):
            # Simulate a concurrent identical submission joining the
            # still-in-flight job while the first put round runs.
            record.tenants.add("team-late")
            return real_tenant_store(base, tenant)

        monkeypatch.setattr(serve_app, "tenant_store", attaching_store)
        server._finish(record, {"job_id": record.job_id, "status": "done",
                                "result": {"ok": 1}})
        monkeypatch.setattr(serve_app, "tenant_store", real_tenant_store)

        for tenant in ("team-a", "team-late"):
            assert tenant_store(server.cache_base, tenant).get(
                SERVE_STAGE, record.circuit_fp, record.config_fp) == \
                {"result": {"ok": 1}}, tenant
        assert record.key not in server._by_key
        assert record.status == "done"
