"""Tests for repro.obs.live / repro.obs.trace — journal tailing, the
progress/ETA model, ``repro-atpg watch``, Chrome trace export, merge
clock-skew clamping, and the cache hit-rate tallies.

The concurrency tests are the heart: a *separate writer process*
appends spans and heartbeats to a journal while this process tails it,
and every event must come through exactly once, with torn lines
buffered rather than crashing the follower.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import pytest

from repro import generation_flow, obs
from repro.circuit import s27
from repro.cache import ResultStore
from repro.cli import main
from repro.faults import collapse_faults
from repro.obs import (
    JournalFollower,
    ProgressModel,
    export_chrome_trace,
    follow_journal,
    merge_journals,
    new_span_id,
    new_trace_id,
    phase_weights_from_store,
    progress_snapshot,
    read_journal,
    render_watch,
)
from repro.obs.journal import RunJournal
from repro.obs.live import DEFAULT_PHASE_WEIGHTS, _FileTail
from repro.obs.trace import load_trace_events
from repro.parallel import ParallelFaultSim
from repro.parallel.worker import HEARTBEAT_ENV
from tests.util import random_vectors


# -- trace identity ----------------------------------------------------------


def test_trace_ids_are_fresh_hex():
    tid, sid = new_trace_id(), new_span_id()
    assert len(tid) == 32 and int(tid, 16) >= 0
    assert len(sid) == 16 and int(sid, 16) >= 0
    assert new_trace_id() != tid
    assert new_span_id() != sid


def test_session_threads_trace_id_through_journal_and_spans(tmp_path):
    path = tmp_path / "run.jsonl"
    with obs.session(trace=path) as telemetry:
        trace_id = telemetry.trace_id
        with obs.span("outer"):
            with obs.span("inner"):
                pass
    events = read_journal(path)
    assert events[0]["data"]["trace_id"] == trace_id
    spans = [e for e in events if e["type"] == "span.open"]
    ids = {e["data"]["path"]: e["data"]["span"] for e in spans}
    parents = {e["data"]["path"]: e["data"]["parent"] for e in spans}
    assert ids["outer"] != ids["outer/inner"]
    assert parents["outer"] == ""
    assert parents["outer/inner"] == ids["outer"]
    closes = [e for e in events if e["type"] == "span.close"]
    assert {e["data"]["span"] for e in closes} == set(ids.values())


# -- incremental tailing -----------------------------------------------------


def test_file_tail_buffers_torn_line(tmp_path):
    path = tmp_path / "run.jsonl"
    journal = RunJournal(path)
    journal.emit("alpha")
    tail = _FileTail(path, "main")
    assert [e["type"] for e in tail.poll()] == ["journal.open", "alpha"]
    # Simulate the writer caught mid-write: append half a record.
    whole = json.dumps({"seq": 2, "t": 9.0, "type": "beta", "data": {}})
    with path.open("a", encoding="utf-8") as fh:
        fh.write(whole[:10])
        fh.flush()
    assert tail.poll() == []        # torn tail buffered, not parsed
    with path.open("a", encoding="utf-8") as fh:
        fh.write(whole[10:] + "\n")
    assert [e["type"] for e in tail.poll()] == ["beta"]
    assert tail.malformed == 0
    journal.close()


def test_file_tail_counts_malformed_complete_lines(tmp_path):
    path = tmp_path / "run.jsonl"
    journal = RunJournal(path)
    with path.open("a", encoding="utf-8") as fh:
        fh.write("{not json}\n")
    tail = _FileTail(path, "main")
    assert [e["type"] for e in tail.poll()] == ["journal.open"]
    assert tail.malformed == 1
    journal.close()


def test_follower_discovers_worker_journals_late(tmp_path):
    base = tmp_path / "run.jsonl"
    journal = RunJournal(base, trace_id=new_trace_id())
    follower = JournalFollower(base)
    follower.poll()
    # A worker journal appearing *after* the first poll must be found.
    worker = RunJournal(tmp_path / "run.jsonl.w42")
    worker.emit("parallel.worker.heartbeat", shard=0, busy=True)
    got = follower.poll()
    assert {e["src"] for e in got} == {"w42"}
    assert not follower.finished
    worker.close()
    journal.close()
    follower.poll()
    assert follower.finished


_WRITER_SCRIPT = """
import os, sys, time
sys.path.insert(0, {src!r})
from repro.obs.journal import RunJournal

journal = RunJournal({path!r}, trace_id="ab" * 16)
print("ready", flush=True)
for i in range({count}):
    journal.emit("span.open", path="work.%d" % i, span="%016x" % i, parent="")
    journal.emit("parallel.worker.heartbeat", shard=0, vectors=i,
                 vectors_total={count}, busy=True, pid=os.getpid())
    journal.emit("span.close", path="work.%d" % i, span="%016x" % i)
    time.sleep(0.002)
journal.close()
"""


def test_tail_while_separate_process_writes(tmp_path):
    """The satellite contract: a writer *process* appends spans and
    heartbeats while this process tails — no event lost, no partial-line
    crash, and ``watch --once`` renders mid-run."""
    path = tmp_path / "run.jsonl"
    count = 150
    script = _WRITER_SCRIPT.format(
        src=str((os.path.dirname(os.path.dirname(__file__))) + "/src"),
        path=str(path), count=count)
    writer = subprocess.Popen([sys.executable, "-c", script],
                              stdout=subprocess.PIPE, text=True)
    try:
        assert writer.stdout.readline().strip() == "ready"
        seen = []
        watched_mid_run = False
        for event in follow_journal(path, poll_interval=0.005, timeout=30):
            seen.append(event)
            if not watched_mid_run and len(seen) > 5 \
                    and writer.poll() is None:
                assert main(["watch", str(path), "--once"]) == 0
                watched_mid_run = True
        assert writer.wait(timeout=30) == 0
    finally:
        if writer.poll() is None:
            writer.kill()
        writer.stdout.close()
    # journal.open + 3 per iteration + journal.close — each exactly once.
    assert len(seen) == 2 + 3 * count
    seqs = [e["seq"] for e in seen]
    assert seqs == list(range(2 + 3 * count))
    follower = JournalFollower(path)
    follower.poll()
    assert follower.malformed == 0 and follower.finished


def test_watch_once_renders_mid_run_output(tmp_path, capsys):
    path = tmp_path / "run.jsonl"
    journal = RunJournal(path, trace_id="cd" * 16)
    journal.emit("progress.plan", flow="generation", phases=["atpg"])
    journal.emit("span.open", path="pipeline", span="1" * 16, parent="")
    assert main(["watch", str(path), "--once"]) == 0
    out = capsys.readouterr().out
    assert "RUNNING" in out and "cdcdcdcdcdcd" in out
    assert "generation" in out and "pipeline" in out
    journal.close()
    assert main(["watch", str(path), "--once"]) == 0
    assert "FINISHED" in capsys.readouterr().out


def test_watch_once_missing_journal_is_not_an_error(tmp_path, capsys):
    assert main(["watch", str(tmp_path / "nope.jsonl"), "--once"]) == 0
    assert "no journal" in capsys.readouterr().out


# -- merge clock-skew clamping -----------------------------------------------


def _fake_journal(path, wall_open, events):
    """Hand-write a minimal well-formed journal with a chosen wall clock."""
    lines = [{"seq": 0, "t": 0.0, "type": "journal.open",
              "data": {"schema": "repro.obs.journal/1",
                       "wall_time": wall_open}}]
    for offset, (etype, data) in enumerate(events):
        lines.append({"seq": offset + 1, "t": 0.001 * (offset + 1),
                      "type": etype, "data": data})
    lines.append({"seq": len(lines), "t": 0.001 * len(lines),
                  "type": "journal.close", "data": {"wall_time": wall_open}})
    path.write_text("".join(json.dumps(line) + "\n" for line in lines),
                    encoding="utf-8")


def test_merge_anchor_first_clamps_skewed_worker(tmp_path):
    base, worker = tmp_path / "run.jsonl", tmp_path / "run.jsonl.w9"
    _fake_journal(base, wall_open=1000.0, events=[("main.evt", {})])
    # Worker's wall clock claims it opened 5s *before* its parent.
    _fake_journal(worker, wall_open=995.0, events=[("w.evt", {})])
    merged = merge_journals([base, worker], anchor="first")
    assert all(e["t"] >= 0.0 for e in merged)
    clamped = [e for e in merged if e["src"] == "w9" and e["t"] == 0.0]
    assert len(clamped) >= 2    # the worker's early events hit the clamp
    assert merged[0]["data"]["skew_clamped"] == len(clamped)
    # Default anchor="min" re-zeroes on the earliest open: nothing clamps.
    merged_min = merge_journals([base, worker])
    assert "skew_clamped" not in merged_min[0]["data"]


def test_merge_skew_counts_metric(tmp_path):
    base, worker = tmp_path / "run.jsonl", tmp_path / "run.jsonl.w9"
    _fake_journal(base, wall_open=1000.0, events=[])
    _fake_journal(worker, wall_open=999.0, events=[])
    with obs.session() as telemetry:
        merge_journals([base, worker], anchor="first")
    assert telemetry.metrics.counter("journal.merge.skew").value > 0


def test_merge_rejects_unknown_anchor(tmp_path):
    path = tmp_path / "run.jsonl"
    _fake_journal(path, wall_open=1.0, events=[])
    with pytest.raises(ValueError, match="anchor"):
        merge_journals([path], anchor="median")


def test_merge_rejects_non_finite_wall_time(tmp_path):
    path = tmp_path / "run.jsonl"
    _fake_journal(path, wall_open=float("nan"), events=[])
    with pytest.raises(ValueError, match="wall_time"):
        merge_journals([path])


# -- progress model ----------------------------------------------------------


def test_progress_model_on_recorded_generation_run(tmp_path):
    path = tmp_path / "run.jsonl"
    with obs.session(trace=path):
        generation_flow(s27())
    model = ProgressModel()
    for event in read_journal(path):
        model.ingest(event)
    snap = model.snapshot()
    assert snap.finished and snap.started
    assert snap.fraction == 1.0 and snap.eta == 0.0
    assert snap.flow == "generation"
    names = {p.name for p in snap.phases}
    assert {"atpg", "restoration", "omission"} <= names
    details = {p.name: p.detail for p in snap.phases}
    assert details["atpg"].endswith("faults")
    text = render_watch(snap)
    assert "FINISHED" in text and "100.0%" in text
    assert text.isascii()


def test_progress_model_mid_run_fraction_and_eta():
    model = ProgressModel()
    model.ingest({"seq": 0, "t": 0.0, "type": "journal.open", "_wall": 100.0,
                  "data": {"wall_time": 100.0, "trace_id": "ef" * 16}})
    model.ingest({"seq": 1, "t": 0.0, "type": "progress.plan", "_wall": 100.0,
                  "data": {"flow": "generation",
                           "phases": ["collapse", "atpg", "omission"]}})
    model.ingest({"seq": 2, "t": 0.1, "type": "span.open", "_wall": 100.1,
                  "data": {"path": "pipeline"}})
    model.ingest({"seq": 3, "t": 0.1, "type": "span.open", "_wall": 100.1,
                  "data": {"path": "pipeline/collapse"}})
    model.ingest({"seq": 4, "t": 0.2, "type": "span.close", "_wall": 100.2,
                  "data": {"path": "pipeline/collapse", "duration": 0.1}})
    model.ingest({"seq": 5, "t": 0.2, "type": "span.open", "_wall": 100.2,
                  "data": {"path": "pipeline/atpg"}})
    model.ingest({"seq": 6, "t": 0.2, "type": "progress.work", "_wall": 100.2,
                  "data": {"phase": "atpg", "total": 100, "unit": "faults"}})
    model.ingest({"seq": 7, "t": 5.0, "type": "coverage", "_wall": 105.0,
                  "data": {"phase": "pipeline.atpg", "detected": 50}})
    snap = model.snapshot(now=105.0)
    weights = DEFAULT_PHASE_WEIGHTS
    total = weights["collapse"] + weights["atpg"] + weights["omission"]
    expected = (weights["collapse"] + 0.5 * weights["atpg"]) / total
    assert snap.fraction == pytest.approx(expected)
    assert not snap.finished
    assert snap.elapsed == pytest.approx(5.0)
    assert snap.eta == pytest.approx(5.0 * (1 - expected) / expected)
    assert snap.phase == "pipeline/atpg"
    assert "50/100 faults" in render_watch(snap)


def test_progress_model_estimate_event_overrides_weights():
    model = ProgressModel()
    model.ingest({"seq": 0, "t": 0.0, "type": "progress.estimate",
                  "data": {"source": "cache",
                           "weights": {"atpg": 500.0, "bogus": -1}}})
    assert model.weights["atpg"] == 500.0
    assert model.weights_source == "cache"
    assert "bogus" not in model.weights       # non-positive values ignored


def test_progress_model_unwraps_relay_envelope():
    model = ProgressModel()
    model.ingest({"seq": 0, "t": 0.0, "type": "journal.open",
                  "data": {"wall_time": 0.0}})
    model.ingest({"seq": 1, "t": 1.0, "type": "parallel.worker.event",
                  "data": {"inner": "parallel.worker.heartbeat", "src": "w7",
                           "seq": 3, "shard": 2, "vectors": 10,
                           "vectors_total": 40, "busy": True, "pid": 7}})
    snap = model.snapshot(now=2.0)
    assert len(snap.shards) == 1
    shard = snap.shards[0]
    assert (shard.src, shard.shard, shard.vectors) == ("w7", 2, 10)
    assert shard.fraction == pytest.approx(0.25)


def test_render_watch_before_any_event():
    assert render_watch(ProgressModel().snapshot(now=0.0)) == \
        "waiting for journal events..."


def test_in_process_progress_snapshot():
    assert progress_snapshot() is None       # no active session
    with obs.session():
        obs.event("progress.plan", flow="generation", phases=["atpg"])
        with obs.span("pipeline"):
            with obs.span("atpg"):
                snap = progress_snapshot()
    assert snap is not None and snap.started and not snap.finished
    assert snap.phase == "pipeline/atpg"
    assert snap.flow == "generation"


# -- warm phase weights from the cache ---------------------------------------


def test_phase_weights_from_store_scales_with_history(tmp_path):
    store = ResultStore(tmp_path / "cache")
    assert phase_weights_from_store(store, "f" * 40) is None
    times = [[f"g{i}/0/1", i % 60] for i in range(200)]
    store.put("detection", "f" * 40, "c" * 40, {"times": times})
    weights = phase_weights_from_store(store, "f" * 40)
    assert weights is not None
    assert weights["atpg"] == pytest.approx(200.0)       # 1.0 * faults
    assert weights["omission"] == pytest.approx(60.0)    # 1.0 * horizon
    # Other circuits are unaffected.
    assert phase_weights_from_store(store, "0" * 40) is None


# -- heartbeats / parallel parity --------------------------------------------


def test_parallel_with_heartbeats_bit_identical_to_serial(
        tmp_path, monkeypatch):
    monkeypatch.setenv(HEARTBEAT_ENV, "0.01")
    circuit = s27()
    faults = collapse_faults(circuit)
    vectors = random_vectors(circuit, 60, seed=9)
    serial = ParallelFaultSim(circuit, faults, jobs=1).run(vectors)
    path = tmp_path / "run.jsonl"
    with obs.session(trace=path):
        with ParallelFaultSim(circuit, faults, jobs=2,
                              min_parallel_faults=1) as engine:
            parallel = engine.run(vectors)
    assert parallel.detection_time == serial.detection_time
    relayed = [e for e in read_journal(path)
               if e["type"] == "parallel.worker.event"]
    beats = [e for e in relayed
             if e["data"]["inner"] == "parallel.worker.heartbeat"]
    assert beats, "workers emitted no heartbeats"
    spans = [e["data"] for e in relayed if e["data"]["inner"] == "span.open"]
    assert spans and all(s["parent"] for s in spans), \
        "worker shard spans must link to the parent parallel.run span"
    # Graceful pool shutdown must close the worker journals (via a
    # multiprocessing finalizer — atexit never runs in fork children),
    # so a live `watch` sees the run finish instead of hanging.
    worker_paths = sorted(tmp_path.glob("run.jsonl.w*"))
    assert worker_paths
    for wpath in worker_paths:
        assert read_journal(wpath)[-1]["type"] == "journal.close", wpath


# -- trace export ------------------------------------------------------------


def test_export_chrome_trace_structure(tmp_path):
    path = tmp_path / "run.jsonl"
    with obs.session(trace=path) as telemetry:
        trace_id = telemetry.trace_id
        generation_flow(s27())
    trace = export_chrome_trace(load_trace_events(path))
    events = trace["traceEvents"]
    assert events and trace["otherData"]["trace_id"] == trace_id
    opens = [e for e in events if e["ph"] == "B"]
    closes = [e for e in events if e["ph"] == "E"]
    assert len(opens) == len(closes) > 0
    assert all(e.get("ts", 0) >= 0 for e in events)
    meta = [e for e in events if e["ph"] == "M"]
    assert {e["args"]["name"] for e in meta} == {"main"}
    json.dumps(trace)       # must be valid JSON end to end


def test_export_synthesizes_close_for_unclosed_span(tmp_path):
    path = tmp_path / "run.jsonl"
    journal = RunJournal(path, trace_id=new_trace_id())
    journal.emit("span.open", path="pipeline", span="a" * 16, parent="")
    journal.emit("span.open", path="pipeline/atpg", span="b" * 16,
                 parent="a" * 16)
    del journal     # crashed run: no span.close, no journal.close
    trace = export_chrome_trace(load_trace_events(path))
    opens = [e for e in trace["traceEvents"] if e["ph"] == "B"]
    closes = [e for e in trace["traceEvents"] if e["ph"] == "E"]
    assert len(opens) == len(closes) == 2


def test_export_trace_cli_multiprocess(tmp_path, capsys):
    path = tmp_path / "run.jsonl"
    with obs.session(trace=path):
        circuit = s27()
        faults = collapse_faults(circuit)
        with ParallelFaultSim(circuit, faults, jobs=2,
                              min_parallel_faults=1) as engine:
            engine.run(random_vectors(circuit, 40, seed=3))
    out = tmp_path / "trace.json"
    assert main(["export-trace", str(path), str(out)]) == 0
    assert "wrote" in capsys.readouterr().out
    trace = json.loads(out.read_text(encoding="utf-8"))
    sources = trace["otherData"]["sources"]
    assert len(sources) >= 2        # main + at least one worker journal
    flows = [e for e in trace["traceEvents"] if e["ph"] in ("s", "f")]
    assert flows, "cross-process spans must be linked by flow arrows"
    pids = {e["pid"] for e in trace["traceEvents"]}
    assert len(pids) >= 2


def test_export_trace_cli_rejects_garbage(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not a journal\n", encoding="utf-8")
    assert main(["export-trace", str(bad), str(tmp_path / "out.json")]) == 2


# -- cache hit-rate tallies --------------------------------------------------


def test_cache_tallies_persist_and_rate(tmp_path):
    store = ResultStore(tmp_path / "cache")
    store.put("detection", "a" * 40, "b" * 40, {"times": []})
    store.get("detection", "a" * 40, "b" * 40)      # hit
    store.get("detection", "a" * 40, "c" * 40)      # miss
    store.get("atpg", "a" * 40, "b" * 40)           # miss
    assert store.tallies() == {"detection": [1, 1], "atpg": [0, 1]}
    store.flush_tallies()
    # A fresh store instance reads the persisted file.
    fresh = ResultStore(tmp_path / "cache")
    stats = fresh.stats()
    assert stats.tallies["detection"] == [1, 1]
    assert stats.hit_rate("detection") == pytest.approx(50.0)
    assert stats.hit_rate("atpg") == pytest.approx(0.0)
    assert stats.hit_rate("never_looked_up") is None


def test_cache_stats_cli_shows_hit_rates(tmp_path, capsys):
    root = tmp_path / "cache"
    store = ResultStore(root)
    store.put("detection", "a" * 40, "b" * 40, {"times": []})
    store.get("detection", "a" * 40, "b" * 40)
    store.get("detection", "a" * 40, "c" * 40)
    store.flush_tallies()
    assert main(["cache", "stats", str(root)]) == 0
    out = capsys.readouterr().out
    assert "hit rates" in out
    assert " 50.0%" in out and "1 hit / 2 lookups" in out


def test_cache_tally_file_damage_is_a_clean_slate(tmp_path):
    root = tmp_path / "cache"
    root.mkdir()
    (root / "hit-tally.json").write_text("][", encoding="utf-8")
    store = ResultStore(root)
    store.get("detection", "a" * 40, "b" * 40)      # miss; must not raise
    store.flush_tallies()
    assert store.tallies() == {"detection": [0, 1]}
