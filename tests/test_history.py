"""Run-history index (repro.obs.history): records, durability, fleet
analytics, and the ``repro-atpg runs`` CLI surface."""

import json
import sqlite3
import subprocess
import sys
import time

import pytest

from repro import FlowConfig, generation_flow
from repro.circuit import s27
from repro.cli import main
from repro.obs.history import (
    DEFAULT_OUTLIER_Z,
    DETERMINISTIC_GATES,
    RUN_INDEX_ENV,
    RUN_RECORD_SCHEMA,
    RunEntry,
    RunIndex,
    build_run_record,
    compare_records,
    compute_trend,
    deterministic_drift,
    is_runs_ref,
    load_runs_ref,
    modified_z,
    record_to_artifact,
    render_trend,
    resolve_run_index,
    robust_stats,
    run_config_fingerprint,
)


def make_record(circuit="s27", config_fp="cfg0", wall=1.0, cycles=100,
                coverage=100.0, flow="generation"):
    """A hand-built record with controllable deterministic counters."""
    return {
        "schema": RUN_RECORD_SCHEMA,
        "created": time.time(),
        "circuit": circuit,
        "circuit_fp": f"fp-{circuit}",
        "config_fp": config_fp,
        "flow": flow,
        "backend": "packed",
        "jobs": 1,
        "wall_seconds": wall,
        "git_rev": "abc123",
        "python": "3.x",
        "platform": "test",
        "counters": {"faultsim.cycles": cycles, "atpg.backtracks": 7,
                     "cache.hit": 3},
        "gauges": {"pipeline.generation.coverage_percent": coverage},
        "histograms": {},
        "spans": [{"path": "pipeline.generation", "count": 1,
                   "total_seconds": wall, "depth": 0}],
        "journal": {},
    }


# -- fingerprints ------------------------------------------------------------


class TestConfigFingerprint:
    def test_stable(self):
        assert (run_config_fingerprint(FlowConfig(seed=3))
                == run_config_fingerprint(FlowConfig(seed=3)))

    def test_semantic_knobs_change_it(self):
        base = run_config_fingerprint(FlowConfig())
        assert run_config_fingerprint(FlowConfig(seed=9)) != base
        assert run_config_fingerprint(FlowConfig(compact=False)) != base
        assert run_config_fingerprint(
            FlowConfig(max_omission_passes=3)) != base

    def test_flow_changes_it(self):
        """A generation and a translation run of the same config compute
        different things — they must not share a trend group."""
        cfg = FlowConfig(seed=3)
        assert (run_config_fingerprint(cfg, flow="generation")
                != run_config_fingerprint(cfg, flow="translation"))

    def test_speed_knobs_do_not(self):
        """jobs / checkpoint_interval / cache / backend / run_index
        cannot change result bits, so they must not split trend groups."""
        base = run_config_fingerprint(FlowConfig())
        for cfg in (FlowConfig(jobs=4),
                    FlowConfig(checkpoint_interval=9),
                    FlowConfig(incremental=False),
                    FlowConfig(cache_dir="/tmp/x"),
                    FlowConfig(sim_backend="packed"),
                    FlowConfig(run_index="runs.sqlite")):
            assert run_config_fingerprint(cfg) == base


# -- records -----------------------------------------------------------------


class TestRunRecord:
    def test_shape_and_schema(self):
        record = build_run_record(
            circuit_name="s27", circuit_fp="c", config_fp="k",
            flow="generation", wall_seconds=1.5, backend="packed", jobs=2)
        assert record["schema"] == RUN_RECORD_SCHEMA
        assert record["wall_seconds"] == 1.5
        assert record["jobs"] == 2
        assert "journal" in record and "counters" in record
        json.dumps(record)  # must be JSON-able as is

    def test_artifact_bridge(self):
        """record_to_artifact feeds the existing diff toolchain."""
        from repro.obs import METRICS_SCHEMA
        from repro.obs.diff import flatten_metrics

        artifact = record_to_artifact(make_record(wall=2.5))
        assert artifact["schema"] == METRICS_SCHEMA
        flat = flatten_metrics(artifact)
        assert flat["wall_seconds"] == 2.5
        assert flat["faultsim.cycles"] == 100


# -- the index ---------------------------------------------------------------


class TestRunIndex:
    def test_append_get_roundtrip(self, tmp_path):
        index = RunIndex(tmp_path / "runs.sqlite")
        run_id = index.append(make_record(wall=1.25))
        assert run_id is not None
        entry = index.get(run_id)
        assert entry is not None
        assert entry.circuit == "s27"
        assert entry.wall_seconds == 1.25
        assert entry.record["counters"]["faultsim.cycles"] == 100
        assert entry.fingerprint == ("fp-s27", "cfg0")

    def test_list_latest_and_filters(self, tmp_path):
        index = RunIndex(tmp_path / "runs.sqlite")
        index.append(make_record(circuit="s27"))
        index.append(make_record(circuit="s298"))
        index.append(make_record(circuit="s27", wall=9.0))
        assert index.count() == 3
        assert [e.circuit for e in index.list()] == ["s27", "s298", "s27"]
        assert index.latest().wall_seconds == 9.0
        assert index.latest(circuit="s298").circuit == "s298"
        assert len(index.list(circuit="s27")) == 2

    def test_same_fingerprint_window(self, tmp_path):
        index = RunIndex(tmp_path / "runs.sqlite")
        for wall in (1.0, 2.0, 3.0):
            index.append(make_record(config_fp="A", wall=wall))
        index.append(make_record(config_fp="B"))
        window = index.same_fingerprint("fp-s27", "A")
        assert [e.wall_seconds for e in window] == [3.0, 2.0, 1.0]

    def test_missing_db_is_empty_not_error(self, tmp_path):
        index = RunIndex(tmp_path / "nope" / "runs.sqlite")
        assert index.list() == []
        assert index.count() == 0
        assert index.latest() is None


class TestDurability:
    def test_garbage_file_is_quarantined_and_recreated(self, tmp_path):
        """A corrupt database is a clean miss, never an exception."""
        path = tmp_path / "runs.sqlite"
        path.write_bytes(b"this is not a sqlite database at all\x00\xff")
        index = RunIndex(path)
        run_id = index.append(make_record())
        assert run_id is not None
        assert index.count() == 1
        corpse = tmp_path / "runs.sqlite.corrupt"
        assert corpse.exists()
        assert corpse.read_bytes().startswith(b"this is not")

    def test_truncated_db_recovers(self, tmp_path):
        path = tmp_path / "runs.sqlite"
        RunIndex(path).append(make_record())
        path.write_bytes(path.read_bytes()[:100])  # chop mid-header data
        index = RunIndex(path)
        assert index.append(make_record()) is not None
        assert index.count() >= 1

    def test_unreadable_reads_return_empty(self, tmp_path, monkeypatch):
        index = RunIndex(tmp_path / "runs.sqlite")
        index.append(make_record())

        def boom(*a, **k):
            raise sqlite3.OperationalError("disk I/O error")

        monkeypatch.setattr(sqlite3, "connect", boom)
        assert index.list() == []
        assert index.append(make_record()) is None

    def test_concurrent_appends_from_two_processes(self, tmp_path):
        """SQLite file locking serializes writers; no record is lost."""
        db = tmp_path / "runs.sqlite"
        n = 8
        script = (
            "import sys; sys.path.insert(0, sys.argv[3])\n"
            "from tests.test_history import make_record\n"
            "from repro.obs.history import RunIndex\n"
            "index = RunIndex(sys.argv[1])\n"
            "ok = sum(index.append(make_record(wall=float(i))) is not None"
            " for i in range(int(sys.argv[2])))\n"
            "print(ok)\n"
        )
        import repro

        repo_root = str(
            __import__("pathlib").Path(repro.__file__).parents[2])
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(db), str(n), repo_root],
                stdout=subprocess.PIPE, text=True)
            for _ in range(2)
        ]
        for proc in procs:
            out, _ = proc.communicate(timeout=120)
            assert proc.returncode == 0
            assert out.strip() == str(n)
        assert RunIndex(db).count() == 2 * n


class TestGc:
    def test_keeps_newest_per_fingerprint(self, tmp_path):
        index = RunIndex(tmp_path / "runs.sqlite")
        for wall in (1.0, 2.0, 3.0, 4.0):
            index.append(make_record(config_fp="A", wall=wall))
        index.append(make_record(config_fp="B", wall=9.0))
        deleted = index.gc(keep=2)
        assert deleted == 2
        walls = {e.wall_seconds for e in index.list()}
        assert walls == {3.0, 4.0, 9.0}

    def test_never_deletes_newest_even_at_keep_zero(self, tmp_path):
        index = RunIndex(tmp_path / "runs.sqlite")
        for wall in (1.0, 2.0):
            index.append(make_record(config_fp="A", wall=wall))
        index.gc(keep=0)  # clamped to 1
        remaining = index.list()
        assert len(remaining) == 1
        assert remaining[0].wall_seconds == 2.0


# -- pipeline hook -----------------------------------------------------------


class TestRecordFlowRun:
    def test_generation_flow_appends_a_record(self, tmp_path):
        db = tmp_path / "runs.sqlite"
        cfg = FlowConfig(seed=1, run_index=str(db))
        generation_flow(s27(), cfg)
        index = RunIndex(db)
        assert index.count() == 1
        entry = index.latest()
        assert entry.circuit == "s27"
        assert entry.flow == "generation"
        assert entry.wall_seconds > 0
        assert entry.config_fp == run_config_fingerprint(
            cfg, flow="generation")

    def test_off_by_default(self, tmp_path, monkeypatch):
        monkeypatch.delenv(RUN_INDEX_ENV, raising=False)
        monkeypatch.chdir(tmp_path)
        generation_flow(s27(), FlowConfig(seed=1))
        assert not list(tmp_path.glob("*.sqlite"))

    def test_env_var_enables(self, tmp_path, monkeypatch):
        db = tmp_path / "env-runs.sqlite"
        monkeypatch.setenv(RUN_INDEX_ENV, str(db))
        generation_flow(s27(), FlowConfig(seed=1))
        assert RunIndex(db).count() == 1

    def test_resolve_rules(self, tmp_path, monkeypatch):
        monkeypatch.delenv(RUN_INDEX_ENV, raising=False)
        assert resolve_run_index(None) is None
        assert resolve_run_index("x.sqlite").name == "x.sqlite"
        monkeypatch.setenv(RUN_INDEX_ENV, str(tmp_path / "e.sqlite"))
        assert resolve_run_index(None).name == "e.sqlite"


# -- analytics ---------------------------------------------------------------


class TestCompareAndDrift:
    def test_identical_records_have_zero_drift(self):
        rec = make_record()
        rows = compare_records(rec, make_record())
        assert deterministic_drift(rows) == []

    def test_cycle_drift_is_flagged(self):
        rows = compare_records(make_record(cycles=100),
                               make_record(cycles=101))
        drift = deterministic_drift(rows)
        assert [r.name for r in drift] == ["faultsim.cycles"]

    def test_drift_in_either_direction(self):
        rows = compare_records(make_record(cycles=101),
                               make_record(cycles=100))
        assert len(deterministic_drift(rows)) == 1

    def test_wall_and_cache_changes_are_not_drift(self):
        old, new = make_record(wall=1.0), make_record(wall=50.0)
        new["counters"]["cache.hit"] = 99
        assert deterministic_drift(compare_records(old, new)) == []


class TestRobustStats:
    def test_median_mad(self):
        med, mad = robust_stats([1.0, 2.0, 3.0, 100.0])
        assert med == 2.5
        assert mad == 1.0

    def test_modified_z_floor_tolerates_tiny_mad(self):
        """5% jitter around the median never flags, even at MAD 0."""
        assert modified_z(1.04, 1.0, 0.0) * 0 == 0  # finite
        assert modified_z(1.04, 1.0, 0.0) <= DEFAULT_OUTLIER_Z


def entries_with_walls(walls, cycles=None):
    cycles = cycles or [100] * len(walls)
    entries = []
    for i, (wall, cyc) in enumerate(zip(walls, cycles)):
        rec = make_record(wall=wall, cycles=cyc)
        entries.append(RunEntry(
            id=i + 1, created=float(i), circuit="s27",
            circuit_fp="fp-s27", config_fp="cfg0", flow="generation",
            backend="packed", jobs=1, git_rev="", wall_seconds=wall,
            record=rec))
    return list(reversed(entries))  # newest-first, like the index


class TestTrend:
    def test_stable_window_passes(self):
        report = compute_trend(entries_with_walls([1.0, 1.01, 0.99, 1.0]))
        assert report.passed
        assert report.drift == []
        assert report.outliers == []
        assert report.window == 4

    def test_wall_outlier_flagged_but_gate_passes(self):
        """The acceptance property: a slowed run flags the wall-clock
        outlier WITHOUT failing the deterministic gate."""
        report = compute_trend(entries_with_walls([1.0, 1.0, 1.0, 30.0]))
        assert report.passed  # outliers never fail the gate
        assert any(r.name == "wall_seconds" for r in report.outliers)
        assert report.outlier_ids == [4]  # the slow record's id

    def test_deterministic_drift_fails_gate(self):
        report = compute_trend(
            entries_with_walls([1.0, 1.0, 1.0],
                               cycles=[100, 100, 105]))
        assert not report.passed
        assert [r.name for r in report.drift] == ["faultsim.cycles"]

    def test_render_mentions_anomalies(self):
        report = compute_trend(entries_with_walls([1.0, 1.0, 25.0]))
        text = render_trend(report)
        assert "wall-clock outliers: " in text
        assert "wall_seconds" in text

    def test_custom_gates_and_threshold(self):
        entries = entries_with_walls([1.0, 1.0, 2.0])
        loose = compute_trend(entries, z_threshold=1e9)
        assert loose.outliers == []
        tight = compute_trend(entries, gates=("wall_seconds",))
        assert not tight.passed  # wall drift now gated deterministically


# -- runs: references --------------------------------------------------------


class TestRunsRefs:
    def test_is_runs_ref(self):
        assert is_runs_ref("runs:3") and is_runs_ref("runs:latest")
        assert not is_runs_ref("metrics.json")

    def test_resolve_by_id_and_latest(self, tmp_path):
        db = tmp_path / "runs.sqlite"
        index = RunIndex(db)
        first = index.append(make_record(wall=1.0))
        index.append(make_record(wall=2.0))
        assert load_runs_ref(f"runs:{first}", db)["gauges"][
            "wall_seconds"] == 1.0
        assert load_runs_ref("runs:latest", db)["gauges"][
            "wall_seconds"] == 2.0

    def test_errors_are_precise(self, tmp_path, monkeypatch):
        monkeypatch.delenv(RUN_INDEX_ENV, raising=False)
        with pytest.raises(ValueError, match="no run index"):
            load_runs_ref("runs:1", None)
        db = tmp_path / "runs.sqlite"
        with pytest.raises(ValueError, match="empty"):
            load_runs_ref("runs:latest", db)
        RunIndex(db).append(make_record())
        with pytest.raises(ValueError, match="no record 99"):
            load_runs_ref("runs:99", db)
        with pytest.raises(ValueError, match="runs:<id>"):
            load_runs_ref("runs:abc", db)


# -- CLI ---------------------------------------------------------------------


@pytest.fixture
def seeded_index(tmp_path):
    """Three bit-identical records plus one slow outlier."""
    db = tmp_path / "runs.sqlite"
    index = RunIndex(db)
    for wall in (1.0, 1.01, 0.99):
        index.append(make_record(wall=wall))
    index.append(make_record(wall=40.0))
    return db


class TestRunsCli:
    def test_list(self, seeded_index, capsys):
        assert main(["runs", "list", "--run-index",
                     str(seeded_index)]) == 0
        out = capsys.readouterr().out
        assert "4 records" in out and "s27" in out

    def test_show(self, seeded_index, capsys):
        assert main(["runs", "show", "1", "--run-index",
                     str(seeded_index)]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["schema"] == RUN_RECORD_SCHEMA

    def test_show_missing(self, seeded_index, capsys):
        assert main(["runs", "show", "77", "--run-index",
                     str(seeded_index)]) == 1

    def test_compare_zero_drift(self, seeded_index, capsys):
        assert main(["runs", "compare", "1", "2", "--assert",
                     "--run-index", str(seeded_index)]) == 0
        assert "zero drift" in capsys.readouterr().out

    def test_compare_assert_fails_on_drift(self, tmp_path, capsys):
        db = tmp_path / "runs.sqlite"
        index = RunIndex(db)
        index.append(make_record(cycles=100))
        index.append(make_record(cycles=200))
        assert main(["runs", "compare", "1", "2", "--assert",
                     "--run-index", str(db)]) == 1
        assert "DRIFT faultsim.cycles" in capsys.readouterr().out

    def test_trend_assert_passes_with_outlier(self, seeded_index, capsys):
        assert main(["runs", "trend", "--assert",
                     "--run-index", str(seeded_index)]) == 0
        out = capsys.readouterr().out
        assert "trend gate passed" in out
        assert "outlier" in out

    def test_trend_assert_fails_on_drift(self, tmp_path, capsys):
        db = tmp_path / "runs.sqlite"
        index = RunIndex(db)
        index.append(make_record(cycles=100))
        index.append(make_record(cycles=105))
        assert main(["runs", "trend", "--assert",
                     "--run-index", str(db)]) == 1
        assert "TREND GATE FAILED" in capsys.readouterr().out

    def test_gc(self, seeded_index, capsys):
        assert main(["runs", "gc", "--keep", "1",
                     "--run-index", str(seeded_index)]) == 0
        assert RunIndex(seeded_index).count() == 1

    def test_diff_metrics_accepts_runs_refs(self, seeded_index, capsys):
        assert main(["diff-metrics", "runs:1", "runs:2",
                     "--run-index", str(seeded_index),
                     "--threshold", "faultsim.*=0"]) == 0
        assert "all thresholds satisfied" in capsys.readouterr().out

    def test_diff_metrics_bad_ref(self, tmp_path, capsys):
        db = tmp_path / "runs.sqlite"
        RunIndex(db).append(make_record())
        assert main(["diff-metrics", "runs:1", "runs:9",
                     "--run-index", str(db)]) == 2

    def test_generate_flag_roundtrip(self, tmp_path, capsys):
        db = tmp_path / "cli-runs.sqlite"
        for _ in range(2):
            assert main(["generate", "s27", "--run-index", str(db)]) == 0
        capsys.readouterr()
        assert main(["runs", "trend", "--assert",
                     "--run-index", str(db)]) == 0
        assert "0 drifting" in capsys.readouterr().out
