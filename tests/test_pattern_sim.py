"""Pattern-parallel simulator: lockstep agreement with the scalar
reference on every lane."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import c17, random_circuit, s27, toy_seq
from repro.circuit.gates import ONE, X, ZERO
from repro.sim import LogicSimulator, PackedPatternSimulator
from tests.util import random_vectors


class TestCombinational:
    def test_matches_scalar_on_c17(self):
        circuit = c17()
        rng = random.Random(4)
        vectors = [tuple(rng.randint(0, 1) for _ in range(5))
                   for _ in range(32)]
        sim = PackedPatternSimulator(circuit, width=32)
        outputs = sim.evaluate(vectors)
        scalar = LogicSimulator(circuit)
        for lane, vector in enumerate(vectors):
            assert outputs[lane] == scalar.step(vector)

    def test_x_lanes(self):
        circuit = c17()
        vectors = [(X,) * 5, (ONE,) * 5]
        sim = PackedPatternSimulator(circuit, width=2)
        outputs = sim.evaluate(vectors)
        assert outputs[1] == (ONE, ZERO)
        # All-X inputs give all-X outputs on NAND trees.
        assert outputs[0] == (X, X)


class TestSequential:
    def test_lanes_are_independent(self, toy_seq_circuit):
        """Each lane's state trajectory matches a standalone scalar run."""
        width = 8
        rng = random.Random(7)
        sequences = [
            [tuple(rng.randint(0, 1) for _ in range(2)) for _ in range(20)]
            for _lane in range(width)
        ]
        packed = PackedPatternSimulator(toy_seq_circuit, width=width)
        results = packed.run(sequences)
        for lane in range(width):
            scalar = LogicSimulator(toy_seq_circuit)
            expected = [scalar.step(v) for v in sequences[lane]]
            assert results[lane] == expected
            assert packed.lane_state(lane) == scalar.state

    def test_load_states(self, s27_circuit):
        width = 3
        states = [(ZERO,) * 3, (ONE,) * 3, (ONE, ZERO, ONE)]
        sim = PackedPatternSimulator(s27_circuit, width=width)
        sim.load_states(states)
        for lane, state in enumerate(states):
            assert sim.lane_state(lane) == state

    def test_reset(self, s27_circuit):
        sim = PackedPatternSimulator(s27_circuit, width=2)
        sim.load_states([(ONE,) * 3, (ZERO,) * 3])
        sim.reset()
        assert sim.lane_state(0) == (X, X, X)

    def test_monte_carlo_fill_use_case(self, s27_scan):
        """The intended use: evaluate many random fills of an X-laden
        sequence simultaneously and pick one whose response is binary."""
        circuit = s27_scan.circuit
        template = [
            tuple(X if i % 2 else 1 for i in range(circuit.num_inputs))
            for _ in range(6)
        ]
        width = 16
        rng = random.Random(11)
        fills = [
            [tuple(rng.randint(0, 1) if v == X else v for v in vec)
             for vec in template]
            for _lane in range(width)
        ]
        packed = PackedPatternSimulator(circuit, width=width)
        results = packed.run(fills)
        assert len(results) == width
        # All fills share the specified positions, so where the template
        # is fully binary the lanes agree with a scalar run of lane 0.
        scalar = LogicSimulator(circuit)
        assert results[0] == [scalar.step(v) for v in fills[0]]


class TestValidation:
    def test_bad_width(self, s27_circuit):
        with pytest.raises(ValueError):
            PackedPatternSimulator(s27_circuit, width=0)

    def test_wrong_vector_count(self, s27_circuit):
        sim = PackedPatternSimulator(s27_circuit, width=2)
        with pytest.raises(ValueError):
            sim.step([(0, 0, 0, 0)])

    def test_wrong_state_count(self, s27_circuit):
        sim = PackedPatternSimulator(s27_circuit, width=2)
        with pytest.raises(ValueError):
            sim.load_states([(0, 0, 0)])

    def test_ragged_sequences(self, s27_circuit):
        sim = PackedPatternSimulator(s27_circuit, width=2)
        with pytest.raises(ValueError):
            sim.run([[(0, 0, 0, 0)], [(0, 0, 0, 0), (1, 1, 1, 1)]])


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    width=st.integers(min_value=1, max_value=12),
    cycles=st.integers(min_value=1, max_value=12),
)
def test_pattern_sim_matches_scalar_random(seed, width, cycles):
    """Random circuits, random lanes: every lane equals its scalar run."""
    circuit = random_circuit("pp", 3, 4, 15, seed=seed)
    rng = random.Random(seed ^ 0xABCD)
    sequences = [
        [tuple(rng.choice((ZERO, ONE, X)) for _ in range(3))
         for _ in range(cycles)]
        for _lane in range(width)
    ]
    packed = PackedPatternSimulator(circuit, width=width)
    results = packed.run(sequences)
    for lane in range(width):
        scalar = LogicSimulator(circuit)
        assert results[lane] == [scalar.step(v) for v in sequences[lane]]
