"""Section 3 translation: structure, cycle identity, detection preservation."""

import random

import pytest

from repro.circuit import insert_scan, s27
from repro.circuit.gates import ONE, X, ZERO
from repro.core import translate_test_set
from repro.faults import collapse_faults
from repro.sim import LogicSimulator, PackedFaultSimulator
from repro.testseq import ScanTest, ScanTestSet
from repro.atpg.scan_sim import scan_test_detections


def paper_test_set(circuit):
    """The paper's Table 2 test set S for s27 (vectors over a1..a4)."""
    ts = ScanTestSet(circuit)
    ts.append(ScanTest((0, 1, 1), ((0, 0, 0, 0),)))
    ts.append(ScanTest((0, 1, 1), ((1, 1, 0, 1),)))
    ts.append(ScanTest((0, 0, 0), ((1, 0, 1, 0),)))
    ts.append(ScanTest((1, 1, 0), ((0, 1, 0, 0), (0, 1, 1, 1), (1, 0, 0, 1))))
    return ts


class TestStructureAgainstPaperTable3:
    """The translation of Table 2 must reproduce Table 3's structure."""

    def test_length_matches_cycle_count(self, s27_circuit, s27_scan):
        ts = paper_test_set(s27_circuit)
        seq = translate_test_set(s27_scan, ts)
        assert len(seq) == ts.total_cycles()

    def test_scan_inp_is_reversed_state(self, s27_circuit, s27_scan):
        """First scan-in of SI=011 (G5,G6,G7) feeds 1,1,0 — G7's value
        first, exactly as in Table 3 rows 0-2."""
        ts = paper_test_set(s27_circuit)
        seq = translate_test_set(s27_scan, ts)
        inp_idx = s27_scan.circuit.inputs.index("scan_inp")
        sel_idx = s27_scan.circuit.inputs.index("scan_sel")
        assert [seq[t][inp_idx] for t in range(3)] == [ONE, ONE, ZERO]
        assert all(seq[t][sel_idx] == ONE for t in range(3))

    def test_functional_rows_carry_vectors(self, s27_circuit, s27_scan):
        ts = paper_test_set(s27_circuit)
        seq = translate_test_set(s27_scan, ts)
        idx = [s27_scan.circuit.inputs.index(n) for n in "G0 G1 G2 G3".split()]
        sel_idx = s27_scan.circuit.inputs.index("scan_sel")
        # Row 3 (after the first scan-in) is T_1 = 0000 with scan_sel=0.
        assert [seq[3][i] for i in idx] == [ZERO, ZERO, ZERO, ZERO]
        assert seq[3][sel_idx] == ZERO
        # Row 7 is T_2 = 1101.
        assert [seq[7][i] for i in idx] == [ONE, ONE, ZERO, ONE]

    def test_original_pis_x_during_scan(self, s27_circuit, s27_scan):
        ts = paper_test_set(s27_circuit)
        seq = translate_test_set(s27_scan, ts)
        idx = [s27_scan.circuit.inputs.index(n) for n in "G0 G1 G2 G3".split()]
        for t in range(3):
            assert all(seq[t][i] == X for i in idx)

    def test_trailing_scan_out_unspecified(self, s27_circuit, s27_scan):
        ts = paper_test_set(s27_circuit)
        seq = translate_test_set(s27_scan, ts)
        inp_idx = s27_scan.circuit.inputs.index("scan_inp")
        for t in range(len(seq) - 3, len(seq)):
            assert seq[t][inp_idx] == X


class TestSemantics:
    def test_scan_in_reaches_target_state(self, s27_circuit, s27_scan):
        """Simulating the first scan operation leaves the chain holding SI."""
        ts = paper_test_set(s27_circuit)
        seq = translate_test_set(s27_scan, ts).randomize_x(random.Random(3))
        sim = LogicSimulator(s27_scan.circuit)
        for t in range(3):
            sim.step(seq[t])
        assert sim.state == (ZERO, ONE, ONE)

    def test_detection_preserved(self, s27_circuit, s27_scan):
        """Every core-logic fault the conventional set detects is detected
        by the randomized translated sequence."""
        ts = paper_test_set(s27_circuit)
        faults = collapse_faults(s27_circuit)
        conventional = PackedFaultSimulator(s27_circuit, faults)
        detected_mask = 0
        for test in ts:
            detected_mask |= scan_test_detections(conventional, test)
        detected = conventional.faults_from_mask(detected_mask)
        assert detected, "paper test set should detect something"

        seq = translate_test_set(s27_scan, ts).randomize_x(random.Random(5))
        scan_sim = PackedFaultSimulator(s27_scan.circuit, detected)
        result = scan_sim.run(list(seq))
        missed = [f for f in detected if f not in result.detection_time]
        assert not missed, f"translation lost detections: {missed}"


class TestValidation:
    def test_wrong_circuit_rejected(self, s27_scan, toy_seq_circuit):
        ts = ScanTestSet(toy_seq_circuit)
        ts.append(ScanTest((0, 0), ((0, 0),)))
        with pytest.raises(ValueError):
            translate_test_set(s27_scan, ts)

    def test_empty_set_translates_to_empty(self, s27_circuit, s27_scan):
        seq = translate_test_set(s27_scan, ScanTestSet(s27_circuit))
        assert len(seq) == 0


class TestMultiChain:
    def test_translation_loads_state_across_chains(self, medium_synth):
        sc = insert_scan(medium_synth, num_chains=3)
        ts = ScanTestSet(medium_synth)
        state = tuple(i % 2 for i in range(medium_synth.num_state_vars))
        ts.append(ScanTest(state, ((0,) * medium_synth.num_inputs,)))
        seq = translate_test_set(sc, ts).randomize_x(random.Random(7))
        sim = LogicSimulator(sc.circuit)
        for t in range(sc.max_chain_length):
            sim.step(seq[t])
        assert sim.state == state

    def test_cycle_count_uses_longest_chain(self, medium_synth):
        sc = insert_scan(medium_synth, num_chains=3)
        ts = ScanTestSet(medium_synth)
        ts.append(ScanTest((0,) * 10, ((0,) * 6,)))
        seq = translate_test_set(sc, ts)
        assert len(seq) == 2 * sc.max_chain_length + 1
