"""The pluggable fault-simulation backend API (repro.sim.backend) and
the vectorized levelized kernel (repro.sim.kernel).

The contract under test: the ``vector`` backend — with either of its
engines (compiled C step interpreter, numpy fallback) — is bit-identical
to the ``PackedFaultSimulator`` reference on every observable surface:
per-step detection masks, ``run()`` detection maps and (cycle, position)
ordering, state tokens round-tripping through :class:`SimSession`
checkpoints, fault drops/repacks, and the parallel engine at every
worker count.  Backend selection (``auto``/env/explicit), the
deprecation shim for explicit ``PackedFaultSimulator`` factories, and
the no-numpy-when-packed guarantee are covered alongside.
"""

import os
import random
import subprocess
import sys
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FlowConfig, obs
from repro.circuit import insert_scan, random_circuit, s27
from repro.faults import collapse_faults
from repro.parallel import ParallelFaultSim
from repro.sim import (
    BACKEND_AUTO,
    BACKEND_NAMES,
    BACKEND_PACKED,
    BACKEND_VECTOR,
    PackedFaultSimulator,
    SimBackend,
    SimSession,
    make_backend,
    resolve_backend_name,
)
from repro.sim import backend as backend_mod
from repro.sim.backend import (
    AUTO_MIN_FAULTS,
    BACKEND_ENV,
    coerce_simulator_factory,
    numpy_available,
    resolve_concrete_backend,
    vector_available,
)
from tests.util import random_vectors

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy not importable")


def _engines():
    """The vector-kernel engines usable on this machine."""
    if not numpy_available():
        return []
    from repro.sim.kernel import load_kernel_library

    engines = ["numpy"]
    if load_kernel_library() is not None:
        engines.append("c")
    return engines


ENGINES = _engines()


def _vector_sim(circuit, faults, engine):
    from repro.sim.kernel import VectorFaultSimulator

    return VectorFaultSimulator(circuit, faults, engine=engine)


CIRCUITS = {
    "s27": lambda: s27(),
    "scan_mid": lambda: insert_scan(
        random_circuit("be_mid", 5, 8, 70, seed=11)).circuit,
    "seq_wide": lambda: random_circuit("be_wide", 7, 5, 50, seed=23),
}


@pytest.fixture(params=sorted(CIRCUITS))
def circuit(request):
    return CIRCUITS[request.param]()


# -- step/run parity against the packed reference ----------------------------


@requires_numpy
@pytest.mark.parametrize("engine", ENGINES)
def test_step_masks_bit_identical(circuit, engine):
    faults = collapse_faults(circuit)
    vectors = random_vectors(circuit, 24, seed=3)
    packed = PackedFaultSimulator(circuit, faults)
    vector = _vector_sim(circuit, faults, engine)
    packed.reset()
    vector.reset()
    for vec in vectors:
        assert vector.step(vec) == packed.step(vec)


@requires_numpy
@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("early_stop", [False, True])
def test_run_detection_maps_bit_identical(circuit, engine, early_stop):
    """run(): same detection times, same (cycle, position) insertion
    order, same vector count — the acceptance-criterion equality."""
    faults = collapse_faults(circuit)
    vectors = random_vectors(circuit, 30, seed=7)
    ref = PackedFaultSimulator(circuit, faults).run(
        [list(v) for v in vectors], stop_when_all_detected=early_stop)
    got = _vector_sim(circuit, faults, engine).run(
        [list(v) for v in vectors], stop_when_all_detected=early_stop)
    assert got.detection_time == ref.detection_time
    assert list(got.detection_time) == list(ref.detection_time)
    assert got.num_vectors == ref.num_vectors
    assert got.faults == ref.faults


@requires_numpy
@pytest.mark.parametrize("engine", ENGINES)
def test_query_surface_parity(circuit, engine):
    """The session-facing query surface (good values, effect masks,
    detecting outputs, detects_all) agrees with packed mid-sequence."""
    faults = collapse_faults(circuit)
    vectors = random_vectors(circuit, 10, seed=5)
    packed = PackedFaultSimulator(circuit, faults)
    vector = _vector_sim(circuit, faults, engine)
    packed.reset()
    vector.reset()
    for vec in vectors:
        mask_p = packed.step(vec)
        mask_v = vector.step(vec)
        assert mask_v == mask_p
        assert vector.detecting_outputs(mask_p) == \
            packed.detecting_outputs(mask_p)
        assert vector.faults_from_mask(mask_p) == \
            packed.faults_from_mask(mask_p)
        for net in list(circuit.outputs)[:3]:
            assert vector.good_net_value(net) == packed.good_net_value(net)
            assert vector.net_effect_mask(net) == packed.net_effect_mask(net)
    assert vector.detects_all(vectors) == packed.detects_all(vectors)


@requires_numpy
@pytest.mark.parametrize("engine", ENGINES)
def test_state_tokens_round_trip(circuit, engine):
    """save_state/restore_state replays to identical futures, and
    machine-state export/import agrees with packed."""
    faults = collapse_faults(circuit)
    vectors = random_vectors(circuit, 16, seed=9)
    packed = PackedFaultSimulator(circuit, faults)
    vector = _vector_sim(circuit, faults, engine)
    packed.reset()
    vector.reset()
    for vec in vectors[:8]:
        packed.step(vec)
        vector.step(vec)
    token_p, token_v = packed.save_state(), vector.save_state()
    assert vector.good_state() == packed.good_state()
    for pos in (0, len(faults) // 2):
        assert vector.machine_state(pos + 1) == packed.machine_state(pos + 1)
    tail_p = [packed.step(vec) for vec in vectors[8:]]
    tail_v = [vector.step(vec) for vec in vectors[8:]]
    assert tail_v == tail_p
    packed.restore_state(token_p)
    vector.restore_state(token_v)
    assert [packed.step(vec) for vec in vectors[8:]] == tail_p
    assert [vector.step(vec) for vec in vectors[8:]] == tail_v


# -- property test: random circuits through both backends --------------------


@requires_numpy
@settings(max_examples=10, deadline=None)
@given(
    params=st.tuples(
        st.integers(min_value=2, max_value=5),     # inputs
        st.integers(min_value=1, max_value=6),     # flops
        st.integers(min_value=6, max_value=45),    # gates
        st.integers(min_value=0, max_value=10_000),  # seed
    ),
    sim_seed=st.integers(0, 1000),
)
def test_backends_agree_on_random_circuits(params, sim_seed):
    inputs, flops, gates, seed = params
    circuit = random_circuit("bh", inputs, flops, max(gates, flops),
                             seed=seed)
    faults = collapse_faults(circuit)
    if not faults:
        return
    vectors = random_vectors(circuit, 20, seed=sim_seed)
    ref = PackedFaultSimulator(circuit, faults).run([list(v) for v in vectors])
    for engine in ENGINES:
        got = _vector_sim(circuit, faults, engine).run(
            [list(v) for v in vectors])
        assert got.detection_time == ref.detection_time
        assert list(got.detection_time) == list(ref.detection_time)


# -- SimSession: checkpoints, drops, repacks ---------------------------------


@requires_numpy
@pytest.mark.skipif(not ENGINES, reason="no vector engine")
def test_session_checkpoint_drop_repack_parity(circuit):
    """A mixed session workload (prefix re-queries, edits, drops that
    trigger repacks) answers bit-identically on both backends."""
    faults = collapse_faults(circuit)
    rng = random.Random(42)
    vectors = random_vectors(circuit, 24, seed=13)
    edited = [list(v) for v in vectors]
    edited[10] = [1 - v for v in edited[10]]

    def drive(name):
        session = SimSession(circuit, faults, checkpoint_interval=4,
                             sim_backend=name)
        answers = [session.detection_times(vectors)]
        answers.append(session.detection_times(vectors[:12]))
        detected = session.detected_mask(vectors)
        # Drop roughly half the detected faults to force a repack.
        half = 0
        for fault in session.faults_of(detected)[::2]:
            half |= session.mask_of([fault])
        session.drop(half)
        answers.append(session.detection_times(edited))
        session.restore_dropped()
        answers.append(session.detection_times(vectors))
        stats = session.close()
        return answers, stats["faults_dropped"]

    packed_answers, packed_dropped = drive(BACKEND_PACKED)
    vector_answers, vector_dropped = drive(BACKEND_VECTOR)
    assert vector_answers == packed_answers
    assert vector_dropped == packed_dropped


def test_session_pins_concrete_backend():
    """auto resolves once at construction; repacks reuse the pinned
    class so state-token formats never switch mid-session."""
    circuit = CIRCUITS["scan_mid"]()
    faults = collapse_faults(circuit)
    session = SimSession(circuit, faults, sim_backend=BACKEND_AUTO)
    assert session.sim_backend in BACKEND_NAMES
    expected = resolve_concrete_backend(BACKEND_AUTO, len(faults))
    assert session.sim_backend == expected
    assert type(session._sim).backend_name == expected


# -- parallel engine: serial-vs-vector, jobs in {1, 2} -----------------------


@requires_numpy
@pytest.mark.skipif(not vector_available(), reason="C engine unavailable")
def test_parallel_jobs_bit_identical_across_backends():
    """Acceptance criterion: serial-vs-vector and jobs in {1, 2}
    detection maps are bit-identical."""
    circuit = CIRCUITS["scan_mid"]()
    faults = collapse_faults(circuit)
    vectors = random_vectors(circuit, 24, seed=17)
    serial_packed = PackedFaultSimulator(circuit, faults).run(
        [list(v) for v in vectors])
    for name in (BACKEND_PACKED, BACKEND_VECTOR):
        for jobs in (1, 2):
            with ParallelFaultSim(
                circuit, faults, jobs=jobs, min_parallel_faults=1,
                sim_backend=name,
            ) as engine:
                par = engine.run(vectors)
            assert par.detection_time == serial_packed.detection_time
            assert list(par.detection_time) == \
                list(serial_packed.detection_time)
            assert par.num_vectors == serial_packed.num_vectors


# -- selection: auto / env / explicit ----------------------------------------


def test_resolve_backend_name_precedence(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    assert resolve_backend_name(None) == BACKEND_AUTO
    assert resolve_backend_name(BACKEND_PACKED) == BACKEND_PACKED
    monkeypatch.setenv(BACKEND_ENV, BACKEND_PACKED)
    assert resolve_backend_name(None) == BACKEND_PACKED
    # explicit beats environment
    assert resolve_backend_name(BACKEND_VECTOR) == BACKEND_VECTOR


def test_resolve_backend_name_rejects_unknown(monkeypatch):
    with pytest.raises(ValueError, match="unknown sim backend"):
        resolve_backend_name("gpu")
    monkeypatch.setenv(BACKEND_ENV, "bogus")
    with pytest.raises(ValueError, match="unknown sim backend"):
        resolve_backend_name(None)


def test_flow_config_validates_backend(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    with pytest.raises(ValueError, match="unknown sim backend"):
        FlowConfig(sim_backend="bogus")
    assert FlowConfig(sim_backend="packed").effective_sim_backend() == \
        BACKEND_PACKED
    assert FlowConfig().effective_sim_backend() == BACKEND_AUTO


def test_auto_keeps_small_fault_lists_packed(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    assert resolve_concrete_backend(
        BACKEND_AUTO, AUTO_MIN_FAULTS - 1) == BACKEND_PACKED


@pytest.mark.skipif(not vector_available(),
                    reason="vector backend unavailable")
def test_auto_picks_vector_for_large_fault_lists(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    assert resolve_concrete_backend(
        BACKEND_AUTO, AUTO_MIN_FAULTS) == BACKEND_VECTOR


@pytest.mark.skipif(not vector_available(),
                    reason="vector backend unavailable")
def test_auto_picks_vector_for_big_circuits(monkeypatch):
    """Single-fault minis on a big circuit go vector: the packed Python
    step costs milliseconds at 10k gates while the kernel program is
    fingerprint-cached on the circuit."""
    from repro.sim.backend import AUTO_MIN_GATES

    monkeypatch.delenv(BACKEND_ENV, raising=False)
    assert resolve_concrete_backend(
        BACKEND_AUTO, 1, AUTO_MIN_GATES) == BACKEND_VECTOR
    assert resolve_concrete_backend(
        BACKEND_AUTO, 1, AUTO_MIN_GATES - 1) == BACKEND_PACKED


def test_auto_degrades_without_numpy(monkeypatch):
    monkeypatch.setattr(backend_mod, "numpy_available", lambda: False)
    assert resolve_concrete_backend(BACKEND_AUTO, 10_000) == BACKEND_PACKED


def test_explicit_vector_without_numpy_raises(monkeypatch):
    monkeypatch.setattr(backend_mod, "numpy_available", lambda: False)
    circuit = s27()
    faults = collapse_faults(circuit)
    with pytest.raises(RuntimeError, match="requires numpy"):
        make_backend(circuit, faults, BACKEND_VECTOR)


def test_make_backend_protocol_conformance():
    circuit = s27()
    faults = collapse_faults(circuit)
    sim = make_backend(circuit, faults, BACKEND_PACKED)
    assert isinstance(sim, SimBackend)
    assert type(sim).backend_name == BACKEND_PACKED
    if numpy_available():
        vec = make_backend(CIRCUITS["scan_mid"](),
                           collapse_faults(CIRCUITS["scan_mid"]()),
                           BACKEND_VECTOR)
        assert isinstance(vec, SimBackend)
        assert type(vec).backend_name == BACKEND_VECTOR


# -- deprecation shim for explicit PackedFaultSimulator factories ------------


def test_explicit_packed_factory_warns_once():
    circuit = s27()
    faults = collapse_faults(circuit)
    backend_mod._WARNED_FACTORY.discard("SimSession")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        session = SimSession(circuit, faults,
                             simulator_factory=PackedFaultSimulator)
        session.close()
        session = SimSession(circuit, faults,
                             simulator_factory=PackedFaultSimulator)
        session.close()
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)
                    and "simulator_factory" in str(w.message)]
    assert len(deprecations) == 1  # once per owner per process
    assert "sim_backend='packed'" in str(deprecations[0].message)


def test_explicit_packed_factory_still_works():
    circuit = s27()
    faults = collapse_faults(circuit)
    vectors = random_vectors(circuit, 12, seed=1)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        session = SimSession(circuit, faults,
                             simulator_factory=PackedFaultSimulator)
    try:
        assert session.sim_backend == BACKEND_PACKED
        reference = SimSession(circuit, faults, sim_backend=BACKEND_PACKED)
        assert session.detection_times(vectors) == \
            reference.detection_times(vectors)
        reference.close()
    finally:
        session.close()


def test_custom_factory_passes_through_unwarned():
    calls = []

    def factory(circuit, faults):
        calls.append(len(faults))
        return PackedFaultSimulator(circuit, faults)

    circuit = s27()
    faults = collapse_faults(circuit)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        session = SimSession(circuit, faults, simulator_factory=factory)
    assert calls == [len(faults)]
    assert session.sim_backend is None  # custom factories are unnamed
    session.close()


def test_custom_factory_conflicts_with_backend_name():
    with pytest.raises(TypeError, match="cannot combine"):
        coerce_simulator_factory(lambda c, f: None, BACKEND_VECTOR, "owner")


def test_packed_factory_conflicts_with_vector_name():
    backend_mod._WARNED_FACTORY.discard("owner")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        with pytest.raises(TypeError, match="conflicts"):
            coerce_simulator_factory(
                PackedFaultSimulator, BACKEND_VECTOR, "owner")


# -- telemetry: the faultsim.backend signal ----------------------------------


def test_make_backend_emits_metrics_and_event():
    circuit = s27()
    faults = collapse_faults(circuit)
    with obs.session() as telemetry:
        make_backend(circuit, faults, BACKEND_PACKED)
        snapshot = telemetry.metrics.snapshot()
    assert snapshot["counters"]["faultsim.backend.packed"] == 1
    assert "faultsim.backend.compile_seconds" in snapshot["gauges"]
    assert "faultsim.backend.plane_bytes" in snapshot["gauges"]


# -- import hygiene: packed never pays for numpy -----------------------------


def test_packed_backend_never_imports_numpy():
    """Building the packed backend (and importing repro at all) must not
    drag numpy in — the no-numpy tier-1 job depends on it."""
    code = (
        "import sys\n"
        "from repro import make_backend, s27\n"
        "from repro.faults import collapse_faults\n"
        "c = s27()\n"
        "sim = make_backend(c, collapse_faults(c), 'packed')\n"
        "sim.run([tuple(0 for _ in c.inputs)] * 4)\n"
        "assert 'numpy' not in sys.modules, 'numpy was imported'\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True,
        env={**os.environ, "PYTHONPATH": "src"},
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    assert proc.returncode == 0, proc.stderr
