"""Synthetic circuit generator: determinism, structure, testability."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import Circuit, random_circuit
from repro.circuit.bench import write_bench


class TestDeterminism:
    def test_same_seed_same_circuit(self):
        a = random_circuit("x", 4, 6, 40, seed=3)
        b = random_circuit("x", 4, 6, 40, seed=3)
        assert write_bench(a) == write_bench(b)

    def test_different_seed_different_circuit(self):
        a = random_circuit("x", 4, 6, 40, seed=3)
        b = random_circuit("x", 4, 6, 40, seed=4)
        assert write_bench(a) != write_bench(b)


class TestStructure:
    def test_requested_sizes(self):
        c = random_circuit("x", 5, 7, 50, seed=1)
        assert c.num_inputs == 5
        assert c.num_state_vars == 7
        assert c.num_gates == 50

    def test_combinational_when_no_flops(self):
        c = random_circuit("x", 3, 0, 10, seed=1)
        assert c.num_state_vars == 0
        assert c.num_gates == 10

    def test_no_dead_logic(self):
        """Every gate output is read by a gate, a flop or a PO."""
        c = random_circuit("x", 4, 5, 60, seed=9)
        for gate in c.gates:
            assert c.fanout_count(gate.output) > 0, f"dead net {gate.output}"

    def test_flop_inputs_distinct_when_possible(self):
        c = random_circuit("x", 4, 5, 60, seed=9)
        d_nets = [f.d for f in c.flops]
        assert len(set(d_nets)) == len(d_nets)

    def test_explicit_output_count(self):
        c = random_circuit("x", 4, 3, 40, seed=2, num_outputs=5)
        # The first num_outputs entries are the sampled observation
        # points — exactly as many as requested, all distinct; dead-net
        # promotion may append more after them.
        assert len(set(c.outputs[:5])) == 5
        assert c.num_outputs >= 5

    def test_output_count_honored_across_seeds(self):
        """The PO loop samples without replacement: every seed yields
        exactly the requested number of distinct sampled outputs."""
        for seed in range(20):
            c = random_circuit("x", 4, 6, 30, seed=seed, num_outputs=12)
            sampled = c.outputs[:12]
            assert len(sampled) == len(set(sampled)) == 12

    def test_validates_as_circuit(self):
        # Construction runs full Circuit validation; reaching here means
        # no cycles, no undriven nets, single drivers.
        c = random_circuit("x", 6, 8, 120, seed=5)
        assert isinstance(c, Circuit)


class TestArgumentValidation:
    def test_needs_inputs(self):
        with pytest.raises(ValueError):
            random_circuit("x", 0, 2, 10, seed=1)

    def test_needs_enough_gates(self):
        with pytest.raises(ValueError):
            random_circuit("x", 3, 10, 5, seed=1)


@settings(max_examples=25, deadline=None)
@given(
    num_inputs=st.integers(min_value=1, max_value=8),
    num_flops=st.integers(min_value=0, max_value=10),
    gates_extra=st.integers(min_value=1, max_value=60),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_random_circuits_always_valid(num_inputs, num_flops, gates_extra, seed):
    """Any parameter combination yields a structurally valid circuit with
    the requested sizes and no dead logic."""
    num_gates = max(1, num_flops) + gates_extra
    c = random_circuit("h", num_inputs, num_flops, num_gates, seed=seed)
    assert c.num_inputs == num_inputs
    assert c.num_state_vars == num_flops
    assert c.num_gates == num_gates
    for gate in c.gates:
        assert c.fanout_count(gate.output) > 0
    # Topological order exists (no combinational cycles).
    assert len(c.topo_gates) == num_gates
