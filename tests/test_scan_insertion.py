"""Scan-chain insertion: structure, shift behaviour, functional equivalence."""

import pytest

from repro.circuit import Circuit, FlipFlop, Gate, insert_scan, s27, toy_seq
from repro.circuit.gates import ONE, X, ZERO
from repro.sim import LogicSimulator


def scan_vec(sc, base, sel, sin):
    """Vector for C_scan from a base vector over original inputs."""
    circuit = sc.circuit
    idx = {n: i for i, n in enumerate(circuit.inputs)}
    vector = [ZERO] * len(circuit.inputs)
    for name, value in zip(sc.original_inputs, base):
        vector[idx[name]] = value
    vector[idx[sc.scan_select]] = sel
    for chain in sc.chains:
        vector[idx[chain.scan_in]] = sin
    return tuple(vector)


class TestStructure:
    def test_extra_lines(self, s27_scan):
        c = s27_scan.circuit
        assert "scan_sel" in c.inputs
        assert "scan_inp" in c.inputs
        assert c.num_inputs == 6
        # scan_out is the last flip-flop of the chain.
        assert s27_scan.chains[0].scan_out in c.outputs

    def test_chain_follows_description_order(self, s27_scan):
        assert s27_scan.chains[0].order == ("G5", "G6", "G7")

    def test_chain_metadata(self, s27_scan):
        chain = s27_scan.chains[0]
        assert chain.length == 3
        assert chain.position("G5") == 0
        assert chain.shifts_to_observe("G5") == 3
        assert chain.shifts_to_observe("G7") == 1

    def test_chain_of(self, s27_scan):
        assert s27_scan.chain_of("G6") is s27_scan.chains[0]
        with pytest.raises(KeyError):
            s27_scan.chain_of("nope")

    def test_mux_expansion_adds_gates(self, s27_circuit, s27_scan):
        # 4 gates per flip-flop (NOT, AND, AND, OR).
        assert s27_scan.circuit.num_gates == s27_circuit.num_gates + 4 * 3

    def test_primitive_mux_mode(self, s27_circuit):
        sc = insert_scan(s27_circuit, expand_mux=False)
        muxes = [g for g in sc.circuit.gates if g.kind == "MUX"]
        assert len(muxes) == 3

    def test_combinational_circuit_rejected(self, toy_comb_circuit):
        with pytest.raises(ValueError):
            insert_scan(toy_comb_circuit)

    def test_bad_num_chains(self, s27_circuit):
        with pytest.raises(ValueError):
            insert_scan(s27_circuit, num_chains=0)
        with pytest.raises(ValueError):
            insert_scan(s27_circuit, num_chains=4)

    def test_bad_chain_order(self, s27_circuit):
        with pytest.raises(ValueError):
            insert_scan(s27_circuit, chain_order=["G5", "G6"])

    def test_custom_chain_order(self, s27_circuit):
        sc = insert_scan(s27_circuit, chain_order=["G7", "G5", "G6"])
        assert sc.chains[0].order == ("G7", "G5", "G6")

    def test_name_collision_resolved(self):
        """A circuit already using 'scan_sel' still scan-inserts cleanly."""
        c = Circuit(
            "clash", ["scan_sel"], ["q"],
            [Gate("d", "NOT", ("scan_sel",))],
            [FlipFlop("q", "d")],
        )
        sc = insert_scan(c)
        assert sc.scan_select != "scan_sel"
        assert sc.scan_select in sc.circuit.inputs


class TestShiftBehaviour:
    def test_scan_in_loads_state(self, s27_scan):
        """Shifting (1,1,0) through scan_inp leaves state (G5,G6,G7)=(0,1,1),
        matching the paper's Table 3 example."""
        sim = LogicSimulator(s27_scan.circuit)
        for bit in (ONE, ONE, ZERO):
            sim.step(scan_vec(s27_scan, (ZERO,) * 4, ONE, bit))
        assert sim.state[:3] == (ZERO, ONE, ONE)  # flops in q order G5,G6,G7

    def test_scan_out_observes_state(self, s27_scan):
        """The last chain element appears on scan_out each shift."""
        circuit = s27_scan.circuit
        sim = LogicSimulator(circuit)
        po_idx = circuit.outputs.index(s27_scan.chains[0].scan_out)
        # Load a known state, then observe while shifting zeros in.
        for bit in (ONE, ZERO, ONE):
            sim.step(scan_vec(s27_scan, (ZERO,) * 4, ONE, bit))
        # state is (G5,G6,G7) = (1,0,1); G7 drives scan_out directly.
        observed = []
        for _ in range(3):
            outs = sim.step(scan_vec(s27_scan, (ZERO,) * 4, ONE, ZERO))
            observed.append(outs[po_idx])
        assert observed == [ONE, ZERO, ONE]

    def test_functional_mode_matches_original(self, s27_circuit, s27_scan):
        """With scan_sel=0 and identical state, C_scan behaves as C."""
        import random

        rng = random.Random(5)
        orig = LogicSimulator(s27_circuit)
        scan = LogicSimulator(s27_scan.circuit)
        state = (ONE, ZERO, ONE)
        orig.reset(state)
        scan.reset(state)
        for _ in range(50):
            base = tuple(rng.randint(0, 1) for _ in range(4))
            orig_out = orig.step(base)
            scan_out = scan.step(scan_vec(s27_scan, base, ZERO, ZERO))
            assert scan_out[0] == orig_out[0]
            assert scan.state == orig.state


class TestMultiChain:
    def test_balanced_split(self, medium_synth):
        sc = insert_scan(medium_synth, num_chains=3)
        lengths = [c.length for c in sc.chains]
        assert sum(lengths) == medium_synth.num_state_vars
        assert max(lengths) - min(lengths) <= 1

    def test_distinct_scan_lines(self, medium_synth):
        sc = insert_scan(medium_synth, num_chains=2)
        ins = {c.scan_in for c in sc.chains}
        assert len(ins) == 2
        assert all(i in sc.circuit.inputs for i in ins)

    def test_single_select_shared(self, medium_synth):
        sc = insert_scan(medium_synth, num_chains=2)
        sel_like = [n for n in sc.circuit.inputs if n.startswith("scan_sel")]
        assert len(sel_like) == 1

    def test_max_chain_length(self, medium_synth):
        sc = insert_scan(medium_synth, num_chains=3)
        assert sc.max_chain_length == max(c.length for c in sc.chains)


class TestMuxEquivalence:
    def test_expanded_and_primitive_agree(self, toy_seq_circuit):
        """Both scan implementations behave identically cycle by cycle."""
        import random

        rng = random.Random(7)
        expanded = insert_scan(toy_seq_circuit, expand_mux=True)
        primitive = insert_scan(toy_seq_circuit, expand_mux=False)
        sim_e = LogicSimulator(expanded.circuit)
        sim_p = LogicSimulator(primitive.circuit)
        for _ in range(80):
            sel = rng.randint(0, 1)
            sin = rng.randint(0, 1)
            base = tuple(rng.randint(0, 1) for _ in range(2))
            out_e = sim_e.step(scan_vec(expanded, base, sel, sin))
            out_p = sim_p.step(scan_vec(primitive, base, sel, sin))
            assert out_e == out_p
            assert sim_e.state == sim_p.state
