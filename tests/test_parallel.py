"""Tests for repro.parallel — planner, pool, merge, engine, integration.

The determinism tests are the heart: for any worker count, the parallel
engine must return results **bit-for-bit identical** to the serial
simulator — same detection sets, same detection cycles, same dict
order, and (at flow level) the same final compacted sequences.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro import FlowConfig, generation_flow, obs
from repro.circuit import s27
from repro.circuit.synth import random_circuit
from repro.cli import build_parser, main
from repro.faults import collapse_faults
from repro.obs import merge_journals, read_journal, worker_journal_path
from repro.obs.journal import RunJournal
from repro.parallel import (
    DEFAULT_MIN_PARALLEL_FAULTS,
    ParallelFaultSim,
    ResilientPool,
    ShardResult,
    costs_from_detection_times,
    merge_shard_results,
    plan_shards,
    resolve_jobs,
)
from repro.parallel.worker import CRASH_ONCE_ENV
from repro.sim import PackedFaultSimulator
from tests.util import random_vectors

CIRCUITS = {
    "s27": s27,
    "par_a": lambda: random_circuit(
        "par_a", num_inputs=4, num_flops=6, num_gates=40, seed=77),
    "par_b": lambda: random_circuit(
        "par_b", num_inputs=5, num_flops=5, num_gates=35, seed=123),
}


# -- planner -----------------------------------------------------------------


def test_plan_partitions_every_position():
    for strategy, costs in (("round_robin", None),
                            ("cost", [float(i % 7) for i in range(100)])):
        plan = plan_shards(100, 8, strategy=strategy, costs=costs)
        seen = sorted(p for s in plan.shards for p in s.positions)
        assert seen == list(range(100))


def test_plan_round_robin_layout():
    plan = plan_shards(10, 3, strategy="round_robin")
    assert [list(s.positions) for s in plan.shards] == [
        [0, 3, 6, 9], [1, 4, 7], [2, 5, 8]]


def test_plan_is_deterministic():
    costs = [((i * 37) % 11) + 1.0 for i in range(60)]
    a = plan_shards(60, 5, strategy="cost", costs=costs)
    b = plan_shards(60, 5, strategy="cost", costs=costs)
    assert [s.positions for s in a.shards] == [s.positions for s in b.shards]


def test_plan_cost_balances_heavy_tail():
    # One huge fault plus uniform rest: LPT puts the heavy one alone-ish.
    costs = [100.0] + [1.0] * 29
    plan = plan_shards(30, 3, strategy="cost", costs=costs)
    loads = sorted(sum(costs[p] for p in s.positions) for s in plan.shards)
    # Round-robin would load the heavy shard at 100 + 9; LPT keeps the
    # other two balanced around (29)/2.
    assert loads[-1] == pytest.approx(100.0)
    assert loads[0] >= 14.0


def test_costs_from_detection_times_orders_undetected_last():
    costs = costs_from_detection_times({0: 3, 2: 10}, 4)
    assert costs[2] > costs[0]          # later detection = more cycles
    assert costs[1] == costs[3] > costs[2]  # undetected cost the horizon


def test_resolve_jobs_env(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(0) == 1
    assert resolve_jobs(None) == 1
    assert resolve_jobs(6) == 6
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert resolve_jobs(0) == 3
    assert resolve_jobs(2) == 2         # explicit wins over env
    monkeypatch.setenv("REPRO_JOBS", "lots")
    with pytest.raises(ValueError):
        resolve_jobs(0)


# -- merge invariants --------------------------------------------------------


def _shard(index, positions, times, num_vectors=5):
    return ShardResult(shard_index=index, positions=tuple(positions),
                       times=dict(times), num_vectors=num_vectors)


def test_merge_rejects_double_coverage():
    faults = collapse_faults(s27())[:4]
    with pytest.raises(ValueError, match="simulated by shards"):
        merge_shard_results(faults, [_shard(0, [0, 1], {}),
                                     _shard(1, [1, 2, 3], {})])


def test_merge_rejects_missing_positions():
    faults = collapse_faults(s27())[:4]
    with pytest.raises(ValueError, match="never"):
        merge_shard_results(faults, [_shard(0, [0, 1], {})])


def test_merge_rebuilds_serial_dict_order():
    faults = collapse_faults(s27())[:6]
    merged = merge_shard_results(faults, [
        _shard(0, [0, 2, 4], {4: 1, 0: 3}),
        _shard(1, [1, 3, 5], {1: 1, 5: 2}, num_vectors=7),
    ])
    # Ascending (cycle, position): (1,1),(1,4),(2,5),(3,0).
    assert [faults.index(f) for f in merged.detection_time] == [1, 4, 5, 0]
    assert merged.num_vectors == 7


# -- engine determinism (the tentpole guarantee) -----------------------------


@pytest.mark.parametrize("name", sorted(CIRCUITS))
def test_parallel_identical_to_serial(name):
    circuit = CIRCUITS[name]()
    faults = collapse_faults(circuit)
    vectors = random_vectors(circuit, 30, seed=9)
    serial = PackedFaultSimulator(circuit, faults).run(
        [list(v) for v in vectors])
    for jobs in (2, 3, 8):
        with ParallelFaultSim(
            circuit, faults, jobs=jobs, min_parallel_faults=1,
        ) as engine:
            par = engine.run(vectors)
        assert par.detection_time == serial.detection_time
        assert list(par.detection_time) == list(serial.detection_time)
        assert par.num_vectors == serial.num_vectors
        assert par.faults == serial.faults


def test_parallel_identical_with_cost_strategy_and_early_stop():
    circuit = CIRCUITS["par_a"]()
    faults = collapse_faults(circuit)
    vectors = random_vectors(circuit, 25, seed=4)
    serial = PackedFaultSimulator(circuit, faults).run(
        [list(v) for v in vectors], stop_when_all_detected=True)
    costs = costs_from_detection_times(
        {i: t for i, (f, t) in enumerate(serial.detection_time.items())},
        len(faults))
    with ParallelFaultSim(
        circuit, faults, jobs=3, strategy="cost", costs=costs,
        min_parallel_faults=1,
    ) as engine:
        par = engine.run(vectors, stop_when_all_detected=True)
    assert par.detection_time == serial.detection_time
    assert list(par.detection_time) == list(serial.detection_time)
    assert par.num_vectors == serial.num_vectors


def test_small_universe_stays_serial():
    circuit = s27()
    faults = collapse_faults(circuit)
    sim = ParallelFaultSim(circuit, faults, jobs=4)  # default threshold
    assert len(faults) < DEFAULT_MIN_PARALLEL_FAULTS
    assert sim.effective_jobs(10) == 1


def test_crash_injected_worker_is_recovered(monkeypatch, tmp_path):
    """A worker killed hard mid-shard (os._exit) must not lose results:
    the pool rebuilds, resplits and the merge still matches serial."""
    marker = tmp_path / "crash.marker"
    monkeypatch.setenv(CRASH_ONCE_ENV, str(marker))
    circuit = CIRCUITS["par_b"]()
    faults = collapse_faults(circuit)
    vectors = random_vectors(circuit, 20, seed=2)
    with ParallelFaultSim(
        circuit, faults, jobs=2, min_parallel_faults=1,
    ) as engine:
        par = engine.run(vectors)
    assert marker.exists(), "the crash hook never fired"
    monkeypatch.delenv(CRASH_ONCE_ENV)
    serial = PackedFaultSimulator(circuit, faults).run(
        [list(v) for v in vectors])
    assert par.detection_time == serial.detection_time
    assert list(par.detection_time) == list(serial.detection_time)


# -- flow-level determinism ---------------------------------------------------


def test_flow_results_identical_across_job_counts():
    """jobs=2 routes the oracle's full-universe queries through the
    pool; the compacted sequences must not move by a single cycle."""
    circuit = random_circuit(
        "par_flow", num_inputs=4, num_flops=7, num_gates=45, seed=5)
    serial = generation_flow(circuit, FlowConfig(seed=3, jobs=1))
    parallel = generation_flow(circuit, FlowConfig(seed=3, jobs=2))
    assert len(collapse_faults(serial.scan_circuit.circuit)) > \
        DEFAULT_MIN_PARALLEL_FAULTS, "circuit too small to exercise the pool"
    assert parallel.detected_total == serial.detected_total
    assert parallel.fault_coverage == serial.fault_coverage
    assert parallel.restored_stats() == serial.restored_stats()
    assert parallel.omitted_stats() == serial.omitted_stats()
    assert [list(v) for v in parallel.omitted.sequence.vectors] == \
           [list(v) for v in serial.omitted.sequence.vectors]


def test_flow_config_jobs_validation():
    with pytest.raises(ValueError, match="jobs"):
        FlowConfig(jobs=-1)
    assert FlowConfig().jobs == 0
    assert FlowConfig(jobs=5).effective_jobs() == 5


def test_flow_config_effective_jobs_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "4")
    assert FlowConfig().effective_jobs() == 4
    assert FlowConfig(jobs=1).effective_jobs() == 1


# -- resilient pool ----------------------------------------------------------


def _double(x):
    return x * 2


def _fail_odd(x):
    if x % 2:
        raise ValueError(f"odd payload {x}")
    return x * 2


def _sleepy(x):
    time.sleep(1.5)
    return x


def _fallback_negate(x):
    return -x


def test_pool_runs_everything():
    pool = ResilientPool(_double, 2)
    assert sorted(pool.run(list(range(6)))) == [0, 2, 4, 6, 8, 10]


def test_pool_deterministic_error_surfaces_in_parent():
    pool = ResilientPool(_fail_odd, 2, max_retries=1, backoff=0.0)
    with pytest.raises(ValueError, match="odd payload"):
        pool.run([1, 2, 3])


def test_pool_serial_fallback_completes():
    pool = ResilientPool(_fail_odd, 2, max_retries=0, backoff=0.0,
                         serial_fn=_fallback_negate)
    assert sorted(pool.run([1, 2, 3])) == [-3, -1, 4]


def test_pool_timeout_requeues_to_fallback():
    pool = ResilientPool(_sleepy, 2, timeout=0.2, max_retries=0,
                         backoff=0.0, serial_fn=_fallback_negate)
    start = time.monotonic()
    assert sorted(pool.run([1, 2])) == [-2, -1]
    assert time.monotonic() - start < 10.0


def test_pool_rejects_zero_jobs():
    with pytest.raises(ValueError):
        ResilientPool(_double, 0)


def test_pool_stats_idle_and_after_run():
    from repro.parallel import PoolStats

    pool = ResilientPool(_double, 2, persistent=True)
    try:
        idle = pool.stats()
        assert isinstance(idle, PoolStats)
        assert (idle.workers, idle.busy, idle.pending) == (0, 0, 0)
        pool.run(list(range(4)))
        after = pool.stats()
        assert after.workers >= 1       # persistent pool keeps processes
        assert after.busy == 0 and after.pending == 0
        assert after.as_dict() == {"workers": after.workers, "busy": 0,
                                   "pending": 0}
    finally:
        pool.close()
    assert pool.stats().workers == 0    # close() released the executor


def test_pool_stats_exports_gauges():
    with obs.session() as telemetry:
        pool = ResilientPool(_double, 2, label="parallel.pool")
        pool.run([1, 2, 3])
        pool.stats()
        gauges = telemetry.metrics.snapshot()["gauges"]
    assert "parallel.pool.workers" in gauges
    assert "parallel.pool.busy" in gauges
    assert "parallel.pool.pending" in gauges


# -- journal merge (satellite: concurrency fix) -------------------------------


def test_worker_journal_path_convention(tmp_path):
    base = tmp_path / "run.jsonl"
    assert worker_journal_path(base, 4711).name == "run.jsonl.w4711"


def _write_journal(path, events):
    journal = RunJournal(path)
    for kind, data in events:
        journal.emit(kind, **data)
    journal.close()


def test_merge_journals_roundtrip(tmp_path):
    base = tmp_path / "run.jsonl"
    a = worker_journal_path(base, 1)
    b = worker_journal_path(base, 2)
    _write_journal(a, [("parallel.shard", {"shard": 0})])
    _write_journal(b, [("parallel.shard", {"shard": 1}),
                       ("parallel.shard", {"shard": 2})])
    merged = merge_journals([a, b], out=tmp_path / "merged.jsonl")
    assert read_journal(tmp_path / "merged.jsonl") == merged
    assert merged[0]["type"] == "journal.open"
    assert merged[0]["src"] == "merge"
    assert sorted(merged[0]["data"]["sources"]) == ["w1", "w2"]
    shards = [e["data"]["shard"] for e in merged
              if e["type"] == "parallel.shard"]
    assert sorted(shards) == [0, 1, 2]
    # Per-source relative order survives the interleave.
    b_events = [e for e in merged if e.get("src") == "w2"]
    assert [e["seq"] for e in b_events] == sorted(e["seq"] for e in b_events)


def test_read_journal_validates_per_source_seq(tmp_path):
    base = tmp_path / "run.jsonl"
    a = worker_journal_path(base, 1)
    b = worker_journal_path(base, 2)
    _write_journal(a, [("x", {})])
    _write_journal(b, [("y", {})])
    merged = merge_journals([a, b], out=tmp_path / "merged.jsonl")
    # Tamper: open a seq gap inside one source only.
    lines = (tmp_path / "merged.jsonl").read_text().splitlines()
    tampered = []
    for line in lines:
        event = json.loads(line)
        if event.get("src") == "w2" and event["seq"] == 2:
            event["seq"] = 5
        tampered.append(json.dumps(event))
    bad = tmp_path / "bad.jsonl"
    bad.write_text("\n".join(tampered) + "\n")
    with pytest.raises(ValueError, match="seq gap in source 'w2'"):
        read_journal(bad)
    assert len(merged) == len(lines)


def test_merge_journals_rejects_empty_input():
    with pytest.raises(ValueError):
        merge_journals([])


def test_parallel_run_merges_worker_journals_into_trace(tmp_path):
    circuit = CIRCUITS["par_a"]()
    faults = collapse_faults(circuit)
    vectors = random_vectors(circuit, 15, seed=1)
    trace = tmp_path / "run.jsonl"
    with obs.session(trace=str(trace)):
        with ParallelFaultSim(
            circuit, faults, jobs=2, min_parallel_faults=1,
        ) as engine:
            engine.run(vectors)
    events = read_journal(trace)
    kinds = {e["type"] for e in events}
    assert "parallel.merge" in kinds
    worker_events = [e for e in events
                     if e["type"] == "parallel.worker.event"]
    assert {e["data"]["inner"] for e in worker_events} >= {
        "parallel.worker.start", "parallel.shard"}


# -- CLI ---------------------------------------------------------------------


def test_cli_jobs_flag_parses():
    args = build_parser().parse_args(["generate", "s27", "--jobs", "3"])
    assert args.jobs == 3
    args = build_parser().parse_args(["table", "5", "--jobs", "2"])
    assert args.jobs == 2
    args = build_parser().parse_args(["report", "--jobs", "2"])
    assert args.jobs == 2


def test_cli_generate_with_jobs_matches_serial(capsys):
    assert main(["generate", "s27", "--jobs", "2"]) == 0
    with_jobs = capsys.readouterr().out
    assert main(["generate", "s27"]) == 0
    assert capsys.readouterr().out == with_jobs


# -- diff-metrics added/removed reporting (satellite) -------------------------


def test_render_diff_reports_added_and_removed_keys():
    from repro.obs import diff_metrics, render_diff

    old = {"counters": {"kept": 1, "dropped": 2}, "gauges": {},
           "histograms": {}, "spans": []}
    new = {"counters": {"kept": 1, "added.one": 5, "added.two": 6},
           "gauges": {}, "histograms": {}, "spans": []}
    text = render_diff(diff_metrics(old, new))
    assert "2 metric(s) only in the new artifact: added.one, added.two" \
        in text
    assert "1 metric(s) only in the old artifact: dropped" in text


def test_render_diff_key_churn_not_truncated_by_top():
    from repro.obs import diff_metrics, render_diff

    old = {"counters": {"a": 1}, "gauges": {}, "histograms": {}, "spans": []}
    new = {"counters": {"b": 1, "c": 2}, "gauges": {}, "histograms": {},
           "spans": []}
    text = render_diff(diff_metrics(old, new), top=1)
    assert "only in the new artifact: b, c" in text
    assert "only in the old artifact: a" in text
