"""Netlist model: construction, validation, topology queries."""

import pytest

from repro.circuit import Circuit, CircuitError, FlipFlop, Gate


def make(inputs, outputs, gates, flops=()):
    return Circuit("t", inputs, outputs, gates, flops)


class TestGateConstruction:
    def test_valid(self):
        g = Gate("y", "AND", ("a", "b"))
        assert g.output == "y"
        assert g.inputs == ("a", "b")

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            Gate("y", "FLUX", ("a",))

    def test_bad_arity(self):
        with pytest.raises(ValueError):
            Gate("y", "NOT", ("a", "b"))

    def test_self_feeding_combinational(self):
        with pytest.raises(ValueError):
            Gate("y", "AND", ("y", "b"))


class TestValidation:
    def test_minimal(self):
        c = make(["a"], ["y"], [Gate("y", "NOT", ("a",))])
        assert c.num_gates == 1

    def test_output_can_be_input_net(self):
        c = make(["a"], ["a"], [])
        assert c.outputs == ("a",)

    def test_duplicate_pi(self):
        with pytest.raises(CircuitError):
            make(["a", "a"], ["a"], [])

    def test_duplicate_po(self):
        with pytest.raises(CircuitError):
            make(["a"], ["a", "a"], [])

    def test_multiple_drivers(self):
        with pytest.raises(CircuitError, match="multiple drivers"):
            make(["a"], ["y"],
                 [Gate("y", "NOT", ("a",)), Gate("y", "BUF", ("a",))])

    def test_gate_shadowing_pi(self):
        with pytest.raises(CircuitError, match="multiple drivers"):
            make(["a", "b"], ["a"], [Gate("a", "NOT", ("b",))])

    def test_undriven_gate_input(self):
        with pytest.raises(CircuitError, match="undriven"):
            make(["a"], ["y"], [Gate("y", "AND", ("a", "ghost"))])

    def test_undriven_flop_d(self):
        with pytest.raises(CircuitError, match="undriven"):
            make(["a"], ["q"], [], [FlipFlop("q", "ghost")])

    def test_undriven_po(self):
        with pytest.raises(CircuitError, match="undriven"):
            make(["a"], ["ghost"], [Gate("y", "NOT", ("a",))])

    def test_combinational_cycle(self):
        with pytest.raises(CircuitError, match="cycle"):
            make(["a"], ["y"], [
                Gate("x", "AND", ("a", "y")),
                Gate("y", "BUF", ("x",)),
            ])

    def test_feedback_through_flop_is_fine(self):
        c = make(["a"], ["q"],
                 [Gate("d", "AND", ("a", "q"))],
                 [FlipFlop("q", "d")])
        assert c.num_state_vars == 1


class TestTopology:
    def test_topo_respects_dependencies(self, s27_circuit):
        seen = set(s27_circuit.inputs)
        seen.update(f.q for f in s27_circuit.flops)
        for gate in s27_circuit.topo_gates:
            for net in gate.inputs:
                assert net in seen, f"{gate.output} evaluated before {net}"
            seen.add(gate.output)

    def test_topo_covers_all_gates(self, s27_circuit):
        assert len(s27_circuit.topo_gates) == s27_circuit.num_gates

    def test_fanout(self, s27_circuit):
        sinks = s27_circuit.fanout("G11")
        consumers = {consumer for consumer, _pin in sinks}
        # G11 feeds the G17 inverter, the G10 NOR and flip-flop G6.
        assert "G17" in consumers
        assert "G10" in consumers
        assert "G6" in consumers

    def test_fanout_po_namespacing(self, s27_circuit):
        sinks = s27_circuit.fanout("G17")
        assert ("PO:G17", 0) in sinks

    def test_fanout_count(self, s27_circuit):
        assert s27_circuit.fanout_count("G11") == 3
        assert s27_circuit.fanout_count("G17") == 1

    def test_driver_kind(self, s27_circuit):
        assert s27_circuit.driver_kind("G0") == "input"
        assert s27_circuit.driver_kind("G11") == "gate"
        assert s27_circuit.driver_kind("G5") == "flop"
        with pytest.raises(KeyError):
            s27_circuit.driver_kind("nope")

    def test_nets(self, s27_circuit):
        nets = s27_circuit.nets()
        assert len(nets) == len(set(nets))
        assert len(nets) == 4 + 10 + 3  # PIs + gates + flops


class TestAccessors:
    def test_stats(self, s27_circuit):
        stats = s27_circuit.stats()
        assert stats == {
            "inputs": 4, "outputs": 1, "gates": 10, "flops": 3, "nets": 17,
        }

    def test_counts(self, s27_circuit):
        assert s27_circuit.num_inputs == 4
        assert s27_circuit.num_outputs == 1
        assert s27_circuit.num_state_vars == 3

    def test_repr(self, s27_circuit):
        text = repr(s27_circuit)
        assert "s27" in text and "3 FF" in text

    def test_equality(self, s27_circuit):
        from repro.circuit import s27

        assert s27_circuit == s27()
        assert s27_circuit != 42

    def test_gate_by_output(self, s27_circuit):
        assert s27_circuit.gate_by_output["G17"].kind == "NOT"

    def test_flop_by_q(self, s27_circuit):
        assert s27_circuit.flop_by_q["G5"].d == "G10"

    def test_immutability_of_views(self, s27_circuit):
        assert isinstance(s27_circuit.gates, tuple)
        assert isinstance(s27_circuit.inputs, tuple)
