"""Static compaction: restoration [23], omission [22], scan-set
reverse-order pass, and the shared oracle."""

import random

import pytest

from repro.atpg import CombScanATPG, SeqATPGConfig
from repro.circuit import insert_scan, random_circuit, s27
from repro.compaction import (
    CompactionOracle,
    omission_compact,
    restoration_compact,
    reverse_order_compact,
)
from repro.core import ScanAwareATPG
from repro.faults import collapse_faults
from repro.sim import PackedFaultSimulator
from repro.testseq import TestSequence
from tests.util import random_vectors


@pytest.fixture(scope="module")
def s27_scan_case():
    """A generated sequence for s27_scan with full fault coverage."""
    sc = insert_scan(s27())
    faults = collapse_faults(sc.circuit)
    result = ScanAwareATPG(sc, faults, config=SeqATPGConfig(seed=1)).generate()
    return sc.circuit, faults, result.sequence


def detected_set(circuit, faults, sequence):
    sim = PackedFaultSimulator(circuit, faults)
    return set(sim.run(list(sequence)).detection_time)


class TestRestoration:
    def test_preserves_detections(self, s27_scan_case):
        circuit, faults, sequence = s27_scan_case
        before = detected_set(circuit, faults, sequence)
        result = restoration_compact(circuit, sequence, faults)
        after = detected_set(circuit, faults, result.sequence)
        assert before <= after

    def test_never_longer(self, s27_scan_case):
        circuit, faults, sequence = s27_scan_case
        result = restoration_compact(circuit, sequence, faults)
        assert len(result.sequence) <= len(sequence)

    def test_typically_shorter(self, s27_scan_case):
        circuit, faults, sequence = s27_scan_case
        result = restoration_compact(circuit, sequence, faults)
        assert len(result.sequence) < len(sequence)

    def test_kept_indices_ascending_subset(self, s27_scan_case):
        circuit, faults, sequence = s27_scan_case
        result = restoration_compact(circuit, sequence, faults)
        assert result.kept_indices == sorted(set(result.kept_indices))
        assert all(0 <= i < len(sequence) for i in result.kept_indices)
        assert result.sequence.vectors == tuple(
            sequence[i] for i in result.kept_indices
        )

    def test_never_detected_reported(self, s27_scan_case):
        circuit, faults, sequence = s27_scan_case
        # Truncate the sequence so some faults go undetected.
        short = TestSequence(sequence.inputs, sequence.vectors[:5],
                             scan_sel=sequence.scan_sel)
        result = restoration_compact(circuit, short, faults)
        assert set(result.never_detected) == \
            set(faults) - detected_set(circuit, faults, short)

    def test_empty_sequence(self, s27_scan_case):
        circuit, faults, _ = s27_scan_case
        empty = TestSequence.for_circuit(circuit, [])
        result = restoration_compact(circuit, empty, faults)
        assert len(result.sequence) == 0


class TestOmission:
    def test_preserves_required(self, s27_scan_case):
        circuit, faults, sequence = s27_scan_case
        before = detected_set(circuit, faults, sequence)
        result = omission_compact(circuit, sequence, faults)
        after = detected_set(circuit, faults, result.sequence)
        assert before <= after

    def test_local_minimum_at_fixpoint(self, s27_scan_case):
        """Run to a fixpoint (a sweep with zero omissions); then removing
        any single remaining vector must break coverage.  A *single* pass
        has no such guarantee — omitting a later vector changes the state
        trajectory and can make an earlier vector newly omittable."""
        circuit, faults, sequence = s27_scan_case
        result = omission_compact(circuit, sequence, faults, max_passes=20)
        compacted = result.sequence
        required = detected_set(circuit, faults, sequence)
        for index in range(len(compacted)):
            shorter = compacted.without(index)
            still = detected_set(circuit, faults, shorter)
            assert not required <= still, (
                f"vector {index} was omittable but kept"
            )

    def test_omitted_count(self, s27_scan_case):
        circuit, faults, sequence = s27_scan_case
        result = omission_compact(circuit, sequence, faults)
        assert result.omitted_count == len(sequence) - len(result.sequence)

    def test_extra_detected_disjoint_from_required(self, s27_scan_case):
        circuit, faults, sequence = s27_scan_case
        required = detected_set(circuit, faults, sequence)
        result = omission_compact(circuit, sequence, faults)
        assert not set(result.extra_detected) & required

    def test_multi_pass_not_worse(self, s27_scan_case):
        circuit, faults, sequence = s27_scan_case
        one = omission_compact(circuit, sequence, faults, max_passes=1)
        two = omission_compact(circuit, sequence, faults, max_passes=3)
        assert len(two.sequence) <= len(one.sequence)

    def test_shortens_scan_operations(self, s27_scan_case):
        """Omission may shorten scan runs — the limited-scan effect the
        paper demonstrates in Table 4."""
        circuit, faults, sequence = s27_scan_case
        result = omission_compact(circuit, sequence, faults)
        assert result.sequence.scan_vector_count() <= \
            sequence.scan_vector_count()


class TestPipelineOrder:
    def test_restoration_then_omission_monotone(self, s27_scan_case):
        circuit, faults, sequence = s27_scan_case
        oracle = CompactionOracle(circuit, faults)
        restored = restoration_compact(circuit, sequence, faults, oracle=oracle)
        omitted = omission_compact(circuit, restored.sequence, faults,
                                   oracle=oracle)
        assert len(omitted.sequence) <= len(restored.sequence) <= len(sequence)
        before = detected_set(circuit, faults, sequence)
        after = detected_set(circuit, faults, omitted.sequence)
        assert before <= after


class TestOracle:
    def test_checkpoint_equals_scratch(self, s27_scan_case):
        """Suffix simulation from a checkpoint equals whole-sequence
        simulation (the machinery omission relies on)."""
        circuit, faults, sequence = s27_scan_case
        oracle = CompactionOracle(circuit, faults)
        vectors = list(sequence.vectors)
        checkpoint = oracle.reset_checkpoint()
        prefix_mask = 0
        split = min(10, len(vectors) // 2)
        for vector in vectors[:split]:
            checkpoint, newly = oracle.advance(checkpoint, vector)
            prefix_mask |= newly
        suffix_mask = oracle.detected_mask(vectors[split:],
                                           initial_state=checkpoint)
        scratch = oracle.detected_mask(vectors)
        assert prefix_mask | suffix_mask == scratch

    def test_mask_roundtrip(self, s27_scan_case):
        circuit, faults, _ = s27_scan_case
        oracle = CompactionOracle(circuit, faults)
        subset = faults[3:9]
        assert oracle.faults_of(oracle.mask_of(subset)) == sorted(
            subset, key=faults.index
        )

    def test_detects_all_early_exit(self, s27_scan_case):
        circuit, faults, sequence = s27_scan_case
        oracle = CompactionOracle(circuit, faults)
        target = oracle.mask_of(faults[:3])
        assert oracle.detects_all(list(sequence.vectors), target)


class TestReverseOrderScanSet:
    def test_coverage_preserved_with_fewer_tests(self):
        circuit = random_circuit("ro", 4, 8, 50, seed=19)
        faults = collapse_faults(circuit)
        gen = CombScanATPG(circuit, faults, seed=3)
        result = gen.generate()
        if len(result.test_set) < 3:
            pytest.skip("test set too small to compact")
        compacted, detected_by = reverse_order_compact(
            circuit, faults, result.test_set
        )
        assert len(compacted) <= len(result.test_set)
        # Coverage must not drop.
        from repro.atpg.scan_sim import scan_test_detections

        sim = PackedFaultSimulator(circuit, faults)
        full_mask = 0
        for test in result.test_set:
            full_mask |= scan_test_detections(sim, test)
        kept_mask = 0
        for test in compacted:
            kept_mask |= scan_test_detections(sim, test)
        assert kept_mask == full_mask
        # detected_by indexes into the compacted set.
        assert all(0 <= i < len(compacted) for i in detected_by.values())
