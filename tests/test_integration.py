"""Cross-module integration scenarios a downstream user would run."""

import random

import pytest

from repro import (
    FlowConfig,
    CombScanATPG,
    ScanAwareATPG,
    SecondApproachATPG,
    SecondApproachConfig,
    SeqATPGConfig,
    collapse_faults,
    generation_flow,
    insert_scan,
    omission_compact,
    parse_bench,
    restoration_compact,
    s27,
    translate_test_set,
    translation_flow,
    write_bench,
)
from repro.sim import PackedFaultSimulator
from repro.testseq import to_stil, to_vcd


class TestRoundTripScenarios:
    def test_bench_roundtrip_through_scan_insertion(self, s27_circuit):
        """C -> C_scan -> .bench text -> parse -> identical behaviour."""
        sc = insert_scan(s27_circuit)
        text = write_bench(sc.circuit)
        again = parse_bench(text, name=sc.circuit.name)
        assert again == sc.circuit

    def test_generated_sequence_exports(self, tmp_path):
        flow = generation_flow(s27(), FlowConfig(seed=1))
        sequence = flow.omitted.sequence
        vcd = to_vcd(sequence, circuit=flow.scan_circuit.circuit)
        stil = to_stil(sequence, circuit=flow.scan_circuit.circuit)
        assert "scan_sel" in vcd
        assert "scan_sel" in stil
        # Every cycle appears in the STIL pattern.
        assert stil.count("V {") == len(sequence)

    def test_first_approach_feeds_translation(self, s27_circuit):
        """First-approach tests (kept as X-cubes) translate and compact
        to below their own conventional cycle count."""
        sc = insert_scan(s27_circuit)
        faults_c = collapse_faults(s27_circuit)
        gen = CombScanATPG(s27_circuit, faults_c, seed=4, keep_x=True)
        result = gen.generate()
        sequence = translate_test_set(sc, result.test_set)
        assert len(sequence) == result.test_set.total_cycles()
        filled = sequence.randomize_x(random.Random(4))
        scan_faults = collapse_faults(sc.circuit)
        restored = restoration_compact(sc.circuit, filled, scan_faults)
        omitted = omission_compact(sc.circuit, restored.sequence, scan_faults)
        assert len(omitted.sequence) < result.test_set.total_cycles()


class TestCrossEngineConsistency:
    def test_three_generators_agree_on_detectability(self, s27_circuit):
        """Scan-aware generation, first approach and second approach all
        reach 100% on s27(_scan): no engine disagrees about what is
        testable on the exact benchmark."""
        sc = insert_scan(s27_circuit)
        scan_faults = collapse_faults(sc.circuit)
        aware = ScanAwareATPG(sc, scan_faults,
                              config=SeqATPGConfig(seed=3)).generate()
        assert aware.base.detected_count == len(scan_faults)

        core_faults = collapse_faults(s27_circuit)
        first = CombScanATPG(s27_circuit, core_faults, seed=3).generate()
        assert first.coverage() == 100.0
        second = SecondApproachATPG(
            s27_circuit, core_faults, SecondApproachConfig(seed=3)
        ).generate()
        assert second.coverage() == 100.0

    def test_flow_results_internally_consistent(self):
        """generation_flow's claims are reproducible from its artifacts
        alone (no trust in intermediate bookkeeping)."""
        flow = generation_flow(s27(), FlowConfig(seed=9))
        sim = PackedFaultSimulator(flow.scan_circuit.circuit, flow.faults)
        raw = sim.run(list(flow.raw.vectors))
        assert len(raw.detection_time) == flow.detected_total
        compacted = sim.run(list(flow.omitted.sequence.vectors))
        assert set(raw.detection_time) <= set(compacted.detection_time)

    def test_translation_flow_vs_manual_steps(self):
        """translation_flow == translate + randomize + compact by hand."""
        circuit = s27()
        flow = translation_flow(circuit, FlowConfig(seed=2))
        sc = flow.scan_circuit
        manual = translate_test_set(sc, flow.baseline.test_set)
        assert len(manual) == flow.baseline_cycles
        manual_filled = manual.randomize_x(random.Random(2 ^ 0x7EA5))
        assert manual_filled == flow.translated


class TestDifferentSeedsDifferentSequencesSameClaims:
    @pytest.mark.parametrize("seed", [11, 22, 33])
    def test_claims_hold_across_seeds(self, seed):
        flow = generation_flow(s27(), FlowConfig(seed=seed))
        assert flow.fault_coverage == 100.0
        assert flow.omitted_stats().total <= flow.restored_stats().total \
            <= flow.raw_stats().total
        n_sv = flow.circuit.num_state_vars
        assert any(r < n_sv for r in flow.omitted.sequence.scan_runs())
