"""SCOAP testability and structural analysis."""

import pytest

from repro.analysis import (
    INFINITY,
    analyze,
    combinational_depth,
    compute_testability,
    hardest_nets,
    input_cone_sizes,
    logic_levels,
    sequential_depth,
    state_dependency_graph,
)
from repro.circuit import Circuit, FlipFlop, Gate, s27, toy_comb, toy_pipeline


class TestScoapControllability:
    def test_primary_inputs_cost_one(self, toy_comb_circuit):
        m = compute_testability(toy_comb_circuit)
        for pi in toy_comb_circuit.inputs:
            assert m[pi].cc0 == 1
            assert m[pi].cc1 == 1

    def test_and_gate(self):
        c = Circuit("t", ["a", "b"], ["y"], [Gate("y", "AND", ("a", "b"))])
        m = compute_testability(c)
        assert m["y"].cc0 == 2   # one controlling 0 + 1
        assert m["y"].cc1 == 3   # both 1s + 1

    def test_or_gate(self):
        c = Circuit("t", ["a", "b"], ["y"], [Gate("y", "OR", ("a", "b"))])
        m = compute_testability(c)
        assert m["y"].cc1 == 2
        assert m["y"].cc0 == 3

    def test_not_swaps(self):
        c = Circuit("t", ["a", "b"], ["y", "z"], [
            Gate("m", "AND", ("a", "b")),
            Gate("y", "NOT", ("m",)),
            Gate("z", "BUF", ("m",)),
        ])
        m = compute_testability(c)
        assert m["y"].cc0 == m["m"].cc1 + 1
        assert m["y"].cc1 == m["m"].cc0 + 1
        assert m["z"].cc0 == m["m"].cc0 + 1

    def test_xor_parity(self):
        c = Circuit("t", ["a", "b"], ["y"], [Gate("y", "XOR", ("a", "b"))])
        m = compute_testability(c)
        # 0: both 0 (2) or both 1 (2) -> 2 + 1; 1: one of each -> 2 + 1.
        assert m["y"].cc0 == 3
        assert m["y"].cc1 == 3

    def test_mux(self):
        c = Circuit("t", ["s", "d0", "d1"], ["y"],
                    [Gate("y", "MUX", ("s", "d0", "d1"))])
        m = compute_testability(c)
        assert m["y"].cc1 == 3  # sel + selected data + 1

    def test_flop_outputs_charged_state_cost(self, toy_pipeline_circuit):
        m = compute_testability(toy_pipeline_circuit, state_cost=9)
        assert m["p0"].cc0 == 9
        assert m["p0"].cc1 == 9

    def test_monotone_with_depth(self):
        """Deeper chains cost more to control."""
        gates = [Gate("n0", "AND", ("a", "b"))]
        for i in range(1, 6):
            gates.append(Gate(f"n{i}", "AND", (f"n{i-1}", "b")))
        c = Circuit("t", ["a", "b"], ["n5"], gates)
        m = compute_testability(c)
        costs = [m[f"n{i}"].cc1 for i in range(6)]
        assert costs == sorted(costs)
        assert costs[0] < costs[-1]


class TestScoapObservability:
    def test_po_is_free(self, toy_comb_circuit):
        m = compute_testability(toy_comb_circuit)
        assert m["y"].co == 0
        assert m["z"].co == 0

    def test_and_side_input(self):
        c = Circuit("t", ["a", "b"], ["y"], [Gate("y", "AND", ("a", "b"))])
        m = compute_testability(c)
        # Observing `a` needs b=1 (cost 1) plus the step.
        assert m["a"].co == 2

    def test_unobservable_net_saturates(self):
        c = Circuit("t", ["a", "b"], ["y"], [
            Gate("dead", "NOT", ("b",)),
            Gate("deader", "NOT", ("dead",)),
            Gate("y", "BUF", ("a",)),
        ])
        m = compute_testability(c)
        assert m["deader"].co >= INFINITY

    def test_flop_d_capture_cost(self, toy_pipeline_circuit):
        m = compute_testability(toy_pipeline_circuit, capture_cost=7)
        # stage0 only feeds flop p0.
        assert m["stage0"].co == 7

    def test_hardest_nets_ranked(self, s27_circuit):
        ranked = hardest_nets(s27_circuit, count=5)
        assert len(ranked) == 5
        values = [t.hardest for _n, t in ranked]
        assert values == sorted(values, reverse=True)


class TestStructure:
    def test_logic_levels(self, toy_comb_circuit):
        levels = logic_levels(toy_comb_circuit)
        assert levels["a"] == 0
        assert levels["t1"] == 1
        assert levels["y"] == 2

    def test_combinational_depth(self, toy_comb_circuit, s27_circuit):
        assert combinational_depth(toy_comb_circuit) == 2
        assert combinational_depth(s27_circuit) >= 3

    def test_state_dependency_graph(self, toy_pipeline_circuit):
        graph = state_dependency_graph(toy_pipeline_circuit)
        assert graph["p1"] == {"p0"}
        assert graph["p2"] == {"p1"}
        assert graph["p0"] == set()

    def test_sequential_depth_pipeline(self, toy_pipeline_circuit):
        assert sequential_depth(toy_pipeline_circuit) == 2

    def test_sequential_depth_s27(self, s27_circuit):
        assert sequential_depth(s27_circuit) >= 1

    def test_sequential_depth_limit(self, toy_pipeline_circuit):
        assert sequential_depth(toy_pipeline_circuit, limit=1) == 1

    def test_input_cones(self, toy_comb_circuit):
        cones = input_cone_sizes(toy_comb_circuit)
        assert cones["y"] == 3   # a, b, c
        assert cones["z"] == 3   # b, c, d

    def test_analyze_report(self, s27_circuit):
        report = analyze(s27_circuit)
        assert report.gates == 10
        assert report.flops == 3
        assert "s27" in str(report)
