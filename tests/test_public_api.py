"""The package-root public surface (repro.__all__) is the contract."""

import repro


def test_all_names_resolve():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_key_entry_points_exported():
    for name in ("FlowConfig", "generation_flow", "translation_flow",
                 "SimSession", "PackedFaultSimulator", "CompactionOracle",
                 "GenerationFlowResult", "TranslationFlowResult",
                 "OmissionResult", "RestorationResult"):
        assert name in repro.__all__


def test_no_duplicate_all_entries():
    assert len(repro.__all__) == len(set(repro.__all__))
