"""The package-root public surface (repro.__all__) is the contract."""

import repro


def test_all_names_resolve():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_key_entry_points_exported():
    for name in ("FlowConfig", "generation_flow", "translation_flow",
                 "SimSession", "PackedFaultSimulator", "CompactionOracle",
                 "GenerationFlowResult", "TranslationFlowResult",
                 "OmissionResult", "RestorationResult"):
        assert name in repro.__all__


def test_no_duplicate_all_entries():
    assert len(repro.__all__) == len(set(repro.__all__))


def test_sim_backend_surface_exported():
    for name in ("SimBackend", "make_backend", "BACKEND_AUTO",
                 "BACKEND_PACKED", "BACKEND_VECTOR", "BACKEND_NAMES"):
        assert name in repro.__all__
    assert repro.BACKEND_AUTO == "auto"
    assert repro.BACKEND_NAMES == (repro.BACKEND_PACKED, repro.BACKEND_VECTOR)


def test_sim_backend_protocol_methods_pinned():
    """The SimBackend protocol is the cross-backend contract; renaming a
    method is an API break and must show up here."""
    for method in ("reset", "step", "run", "save_state", "restore_state",
                   "detects_all", "detecting_outputs", "faults_from_mask"):
        assert hasattr(repro.SimBackend, method), method
        assert hasattr(repro.PackedFaultSimulator, method), method


def test_packed_backend_satisfies_protocol():
    from repro.faults import collapse_faults

    circuit = repro.s27()
    sim = repro.make_backend(circuit, collapse_faults(circuit), "packed")
    assert isinstance(sim, repro.SimBackend)
