"""Section 2 scan-aware test generation: coverage, funct accounting,
the two functional-knowledge completions."""

import pytest

from repro.atpg import SeqATPGConfig
from repro.circuit import insert_scan, random_circuit, s27
from repro.core import ScanAwareATPG
from repro.faults import collapse_faults
from repro.sim import PackedFaultSimulator


@pytest.fixture(scope="module")
def s27_result():
    sc = insert_scan(s27())
    faults = collapse_faults(sc.circuit)
    atpg = ScanAwareATPG(sc, faults, config=SeqATPGConfig(seed=1))
    return sc, faults, atpg.generate()


class TestS27FullCoverage:
    def test_full_coverage(self, s27_result):
        _sc, faults, result = s27_result
        assert result.base.detected_count == len(faults)
        assert result.coverage() == 100.0

    def test_sequence_detects_everything_from_scratch(self, s27_result):
        """Independent confirmation: simulating the emitted sequence from
        power-up detects every fault claimed detected."""
        sc, faults, result = s27_result
        sim = PackedFaultSimulator(sc.circuit, faults)
        confirmed = sim.run(list(result.sequence.vectors))
        assert set(confirmed.detection_time) == set(result.detection_time)

    def test_detection_times_match(self, s27_result):
        sc, faults, result = s27_result
        sim = PackedFaultSimulator(sc.circuit, faults)
        confirmed = sim.run(list(result.sequence.vectors))
        assert confirmed.detection_time == result.detection_time

    def test_uses_scan_sel_as_ordinary_input(self, s27_result):
        """The generated sequence interleaves scan and functional cycles
        (the point of the paper) rather than segregating them."""
        _sc, _faults, result = s27_result
        runs = result.sequence.scan_runs()
        assert runs, "some scan activity expected"
        assert result.sequence.scan_vector_count() < len(result.sequence)

    def test_funct_accounting_consistent(self, s27_result):
        _sc, _faults, result = s27_result
        assert result.funct_count == \
            len(result.funct_scan_out) + len(result.funct_justify)
        for fault in result.funct_scan_out + result.funct_justify:
            assert fault in result.detection_time


class TestKnowledgeToggles:
    def test_without_knowledge_no_funct(self, s27_circuit):
        sc = insert_scan(s27_circuit)
        faults = collapse_faults(sc.circuit)
        result = ScanAwareATPG(
            sc, faults, config=SeqATPGConfig(seed=1),
            use_scan_knowledge=False,
        ).generate()
        assert result.funct_count == 0

    def test_knowledge_never_hurts(self):
        """On a synthetic circuit, enabling the completions detects at
        least as many faults for the same search budget."""
        circuit = random_circuit("k", 3, 12, 70, seed=41)
        sc = insert_scan(circuit)
        faults = collapse_faults(sc.circuit)
        config = SeqATPGConfig(seed=2, initial_random_vectors=16,
                               candidates_per_step=4, max_subseq_len=12,
                               restarts=1)
        with_k = ScanAwareATPG(sc, faults, config=config).generate()
        without_k = ScanAwareATPG(sc, faults, config=config,
                                  use_scan_knowledge=False).generate()
        assert with_k.base.detected_count >= without_k.base.detected_count

    def test_justification_disabled(self):
        circuit = random_circuit("j", 3, 10, 60, seed=42)
        sc = insert_scan(circuit)
        faults = collapse_faults(sc.circuit)
        result = ScanAwareATPG(
            sc, faults, config=SeqATPGConfig(seed=3),
            use_justification=False,
        ).generate()
        assert not result.funct_justify


class TestScanInVectors:
    def test_scan_in_reaches_state(self, s27_scan):
        """The private scan-in builder loads exactly the requested state
        (verified through the real circuit)."""
        from repro.circuit.gates import ONE, ZERO
        from repro.sim import LogicSimulator

        atpg = ScanAwareATPG(s27_scan, collapse_faults(s27_scan.circuit))
        import random

        rng = random.Random(0)
        for state in ((ZERO, ONE, ONE), (ONE, ONE, ZERO), (ZERO, ZERO, ZERO)):
            vectors = atpg._scan_in_vectors(state)
            assert len(vectors) == 3
            sim = LogicSimulator(s27_scan.circuit)
            for vector in vectors:
                filled = tuple(
                    rng.randint(0, 1) if v == 2 else v for v in vector
                )
                sim.step(filled)
            assert sim.state == state

    def test_scan_vector_shape(self, s27_scan):
        from repro.circuit.gates import ONE, X

        atpg = ScanAwareATPG(s27_scan, [])
        vector = atpg._scan_vector()
        sel_idx = s27_scan.circuit.inputs.index("scan_sel")
        assert vector[sel_idx] == ONE
        assert vector.count(X) == len(vector) - 1


class TestMultiChain:
    def test_multi_chain_generation(self):
        circuit = random_circuit("mc", 4, 9, 50, seed=13)
        sc = insert_scan(circuit, num_chains=3)
        faults = collapse_faults(sc.circuit)
        result = ScanAwareATPG(
            sc, faults,
            config=SeqATPGConfig(seed=4, initial_random_vectors=32,
                                 max_subseq_len=12, restarts=1),
        ).generate()
        # Multi-chain scan shortens observation paths; decent coverage
        # must be reachable.
        assert result.base.detected_count > 0.6 * len(faults)

    def test_multi_chain_scan_in(self):
        from repro.circuit.gates import X
        from repro.sim import LogicSimulator
        import random

        circuit = random_circuit("mc2", 4, 7, 40, seed=14)
        sc = insert_scan(circuit, num_chains=2)
        atpg = ScanAwareATPG(sc, [])
        state = tuple(i % 2 for i in range(7))
        vectors = atpg._scan_in_vectors(state)
        assert len(vectors) == sc.max_chain_length
        rng = random.Random(1)
        sim = LogicSimulator(sc.circuit)
        for vector in vectors:
            sim.step(tuple(rng.randint(0, 1) if v == X else v for v in vector))
        assert sim.state == state


class TestDominanceTargeting:
    def test_dominance_ordering_keeps_coverage(self, s27_scan):
        """Dominance-ordered targeting must reach the same coverage on
        s27_scan (everything detectable) while targeting fewer faults
        explicitly up front."""
        from repro.atpg import SeqATPGConfig
        from repro.faults import collapse_faults

        faults = collapse_faults(s27_scan.circuit)
        plain = ScanAwareATPG(
            s27_scan, faults, config=SeqATPGConfig(seed=5)
        ).generate()
        ordered = ScanAwareATPG(
            s27_scan, faults, config=SeqATPGConfig(seed=5),
            use_dominance=True,
        ).generate()
        assert ordered.base.detected_count == plain.base.detected_count \
            == len(faults)

    def test_targets_must_be_in_universe(self, s27_scan):
        from repro.atpg import SequentialATPG
        from repro.faults import collapse_faults
        from repro.faults.model import stem_fault

        faults = collapse_faults(s27_scan.circuit)[:5]
        import pytest as _pytest

        with _pytest.raises(ValueError):
            SequentialATPG(
                s27_scan.circuit, faults,
                targets=[stem_fault("G0", 0), stem_fault("G0", 1)],
            )

    def test_untargeted_faults_accounted(self, s27_scan):
        """Universe faults outside the target list end up detected (via
        dropping) or aborted — never silently lost."""
        from repro.atpg import SeqATPGConfig, SequentialATPG
        from repro.faults import collapse_faults

        faults = collapse_faults(s27_scan.circuit)
        engine = SequentialATPG(
            s27_scan.circuit, faults,
            config=SeqATPGConfig(seed=2, initial_random_vectors=8,
                                 max_subseq_len=4, restarts=1),
            targets=faults[:10],
        )
        result = engine.generate()
        assert len(result.detection_time) + len(result.aborted) == len(faults)
