"""Big-circuit corpus: robust ingest, registry dispatch, scale guards.

Covers the PR-10 surface: published-format ``.bench`` text (wrapped
operand lists, case/spacing variants) parses and round-trips, the
``corpus:<name>`` registry builds deterministic s15850-class stand-ins,
the shared loader dispatches on suffix case-insensitively with one-line
errors for unsupported formats, and the scale machinery (auto
checkpoint policy, memory-bounded shards) stays bit-identical.
"""

import os
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import (
    CORPUS,
    CircuitError,
    corpus_names,
    is_corpus_spec,
    load_circuit,
    parse_bench,
    random_circuit,
    s27,
    synth_like,
    write_bench,
)
from repro.circuit.verilog import parse_verilog, write_verilog


# -- published-format ingest --------------------------------------------------

#: The published ISCAS-89 s27 netlist, verbatim (header comments, blank
#: separator lines, DFFs before gates) — the distribution format every
#: s*/b* file shares.
S27_PUBLISHED = """\
# s27
# 4 inputs
# 1 outputs
# 3 D-type flipflops
# 2 inverters
# 8 gates (1 ANDs + 1 NANDs + 2 ORs + 4 NORs)

INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)

OUTPUT(G17)

G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)

G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
"""

#: An s344-style excerpt in the published formatting: header block,
#: ``INPUT (net)`` spacing variant, lowercase/BUFF kind variants.
S344_STYLE = """\
# s344
# 9 inputs
# 11 outputs
# 15 D-type flipflops
# 1 inverter
# 160 gates (59 ANDs + 18 NANDs + 29 ORs + 54 NORs)

INPUT (CLR)
INPUT(DATA_3)
input(DATA_2)

OUTPUT (READY)
OUTPUT(CTR_3)

CTR_3 = DFF(AX2)
MRQSTB = dff(AX3)

CTRNOT = NOT(CLR)
AX2 = AND(CTRNOT, DATA_3)
AX3 = nand(DATA_2, CTR_3)
READY = BUFF(MRQSTB)
OUTPUT(MRQSTB)
"""

#: A b14-style excerpt with wrapped operand lists: ITC-99 ``.bench``
#: conversions break wide gates across physical lines inside the
#: unclosed ``(...)``.
B14_STYLE_WRAPPED = """\
# b14
# 32 inputs
# 54 outputs

INPUT(RESET)
INPUT(B_0)
INPUT(B_1)
INPUT(B_2)

OUTPUT(D_0)

STATE_0 = DFF(NEXT_0)

U45 = AND(B_0, B_1,
    B_2, STATE_0)
U46 = NOR(RESET,
U45)
NEXT_0 = OR(
  U45,
  U46
)
D_0 = NAND(U46, STATE_0)
OUTPUT(NEXT_0)
"""


class TestPublishedBench:
    def test_s27_verbatim_parses_and_matches_library(self):
        c = parse_bench(S27_PUBLISHED, name="s27")
        assert c.stats() == s27().stats()

    def test_s27_verbatim_round_trips(self):
        c = parse_bench(S27_PUBLISHED, name="s27")
        assert parse_bench(write_bench(c), name="s27") == c

    def test_s344_style_variants(self):
        c = parse_bench(S344_STYLE, name="s344")
        assert c.inputs == ("CLR", "DATA_3", "DATA_2")
        assert set(c.outputs) == {"READY", "CTR_3", "MRQSTB"}
        assert c.num_state_vars == 2
        assert c.gate_by_output["READY"].kind == "BUF"
        assert parse_bench(write_bench(c), name="s344") == c

    def test_b14_style_wrapped_operands(self):
        c = parse_bench(B14_STYLE_WRAPPED, name="b14")
        assert c.gate_by_output["U45"].inputs == (
            "B_0", "B_1", "B_2", "STATE_0")
        assert c.gate_by_output["NEXT_0"].inputs == ("U45", "U46")
        assert parse_bench(write_bench(c), name="b14") == c

    def test_error_points_at_statement_start(self):
        text = "INPUT(a)\nOUTPUT(y)\ny = AND(a,\na)\nBROKEN TEXT\n"
        with pytest.raises(CircuitError, match=r"bad:5"):
            parse_bench(text, name="bad")

    def test_unterminated_statement(self):
        with pytest.raises(CircuitError, match=r"trunc:2.*unterminated"):
            parse_bench("INPUT(a)\ny = AND(a,\n", name="trunc")


# -- round-trip properties ----------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(
    num_inputs=st.integers(min_value=1, max_value=8),
    num_flops=st.integers(min_value=0, max_value=12),
    gates_extra=st.integers(min_value=1, max_value=120),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_bench_round_trip_property(num_inputs, num_flops, gates_extra, seed):
    num_gates = max(1, num_flops) + gates_extra
    c = random_circuit("rt", num_inputs, num_flops, num_gates, seed=seed)
    assert parse_bench(write_bench(c), name="rt") == c


@settings(max_examples=20, deadline=None)
@given(
    num_inputs=st.integers(min_value=1, max_value=8),
    num_flops=st.integers(min_value=0, max_value=12),
    gates_extra=st.integers(min_value=1, max_value=120),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_verilog_round_trip_property(num_inputs, num_flops, gates_extra, seed):
    num_gates = max(1, num_flops) + gates_extra
    c = random_circuit("rt", num_inputs, num_flops, num_gates, seed=seed)
    assert parse_verilog(write_verilog(c)) == c


def test_round_trip_at_5k_gates():
    """Both serializers survive a 5k-gate netlist unchanged."""
    c = random_circuit("big5k", 40, 200, 5000, seed=11)
    assert parse_bench(write_bench(c), name="big5k") == c
    assert parse_verilog(write_verilog(c)) == c


def test_50k_gates_construct_levelize_fingerprint():
    """A 50k-gate synthetic constructs, levelizes and fingerprints
    without recursion errors or quadratic blowup (budget: well under a
    minute; quadratic behavior would take hours)."""
    from repro.cache.fingerprint import circuit_fingerprint

    c = random_circuit("big50k", 100, 1000, 50_000, seed=3)
    assert c.num_gates == 50_000
    assert len(c.topo_gates) == 50_000
    assert len(circuit_fingerprint(c)) == 64


# -- corpus registry ----------------------------------------------------------

class TestCorpusRegistry:
    def test_names_registered(self):
        assert {"s9234", "s13207", "s15850", "s38417", "b14", "b17"} \
            <= set(corpus_names())

    def test_synth_like_matches_spec(self):
        spec = CORPUS["s15850"]
        c = synth_like("s15850")
        assert c.num_inputs == spec.num_inputs
        assert c.num_state_vars == spec.num_flops
        assert c.num_gates == spec.num_gates
        # Sampled POs honor the spec exactly; dead-net promotion may
        # append more.
        assert c.num_outputs >= spec.num_outputs

    def test_synth_like_deterministic(self):
        assert write_bench(synth_like("s9234")) == \
            write_bench(synth_like("s9234"))

    def test_synth_like_seed_population(self):
        a, b = synth_like("s9234", seed=1), synth_like("s9234", seed=2)
        assert write_bench(a) != write_bench(b)
        assert a.num_gates == b.num_gates

    def test_unknown_name_one_line_error(self):
        with pytest.raises(CircuitError, match="unknown corpus circuit"):
            synth_like("s99999")

    def test_flow_overrides_bound_effort(self):
        """Corpus presets must keep a 10k-gate flow inside CI budgets:
        targeted ATPG capped, completions and redundancy proofs off
        (PODEM justification costs ~a minute per fault at this scale,
        scan-out completions append whole chain flushes)."""
        from repro.circuit.corpus import flow_overrides

        over = flow_overrides("corpus:s15850")
        assert over["atpg"].max_targeted_faults > 0
        assert over["classify_redundant"] is False
        assert over["use_scan_knowledge"] is False
        assert over["use_justification"] is False
        assert over["checkpoint_interval"] == 0
        # Deterministic: the same spec always yields the same preset.
        assert flow_overrides("corpus:s15850") == over
        # The overrides must all be FlowConfig fields.
        from repro.core.config import FlowConfig

        FlowConfig(**over)


# -- loader dispatch ----------------------------------------------------------

class TestLoadCircuit:
    def test_corpus_spec(self):
        assert is_corpus_spec("corpus:s9234")
        c = load_circuit("corpus:s9234")
        assert c.name == "s9234"

    def test_bench_suffix_case_insensitive(self, tmp_path):
        for suffix in (".bench", ".BENCH", ".Bench"):
            path = tmp_path / f"c{suffix}"
            path.write_text(S27_PUBLISHED)
            assert load_circuit(path).num_inputs == 4

    def test_verilog_suffix_case_insensitive(self, tmp_path):
        c = random_circuit("vc", 3, 4, 20, seed=5)
        path = tmp_path / "c.V"
        path.write_text(write_verilog(c))
        assert load_circuit(path) == c

    def test_unsupported_extension_one_line(self, tmp_path):
        path = tmp_path / "c.blif"
        path.write_text(".model c\n.end\n")
        with pytest.raises(CircuitError, match="unsupported netlist"):
            load_circuit(path)

    def test_unsupported_extension_without_file(self):
        # The error must not depend on the file existing.
        with pytest.raises(CircuitError, match="unsupported netlist"):
            load_circuit("whatever.vhd")

    def test_missing_file(self):
        with pytest.raises(FileNotFoundError):
            load_circuit("nope_does_not_exist.bench")

    def test_suffixless_existing_file_is_bench(self, tmp_path):
        path = tmp_path / "s27"
        path.write_text(S27_PUBLISHED)
        assert load_circuit(path).num_inputs == 4


class TestCli:
    def _run(self, *argv):
        env = dict(os.environ, PYTHONPATH="src")
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", *argv],
            capture_output=True, text=True, env=env,
        )

    def test_unsupported_extension_exit_and_message(self, tmp_path):
        path = tmp_path / "c.blif"
        path.write_text("x")
        proc = self._run("info", str(path))
        assert proc.returncode == 2
        assert "unsupported netlist extension" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_corpus_spec_info(self):
        proc = self._run("info", "corpus:s9234")
        assert proc.returncode == 0
        assert "inputs" in proc.stdout

    def test_list_shows_corpus(self):
        proc = self._run("list")
        assert proc.returncode == 0
        assert "corpus:s15850" in proc.stdout


# -- scale machinery stays bit-identical --------------------------------------

class TestScaleKnobs:
    def _times(self, monkeypatch, **session_kwargs):
        from repro.faults.collapse import collapse_faults
        from repro.sim.session import SimSession
        from tests.util import random_vectors

        circuit = random_circuit("sk", 5, 8, 60, seed=21)
        faults = collapse_faults(circuit)
        session = SimSession(circuit, faults, **session_kwargs)
        vectors = random_vectors(circuit, 40, seed=2)
        times = session.detection_times(vectors)
        # A second, prefix-sharing query exercises checkpoint resume.
        again = session.detection_times(vectors[:25])
        return times, again

    def test_auto_interval_bit_identical(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECKPOINT_MB", raising=False)
        base = self._times(monkeypatch, checkpoint_interval=4)
        auto = self._times(monkeypatch, checkpoint_interval=0)
        assert base == auto

    def test_memory_budget_bit_identical(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECKPOINT_MB", raising=False)
        base = self._times(monkeypatch, checkpoint_interval=4)
        monkeypatch.setenv("REPRO_CHECKPOINT_MB", "0.000001")
        bounded = self._times(monkeypatch, checkpoint_interval=4)
        assert base == bounded

    def test_shard_memory_budget_bit_identical(self, monkeypatch):
        from repro.faults.collapse import collapse_faults
        from repro.parallel import ParallelFaultSim
        from tests.util import random_vectors

        circuit = random_circuit("sh", 5, 8, 80, seed=33)
        faults = collapse_faults(circuit)
        vectors = random_vectors(circuit, 12, seed=4)

        monkeypatch.delenv("REPRO_SHARD_MB", raising=False)
        with ParallelFaultSim(circuit, faults, jobs=2,
                              min_parallel_faults=1) as engine:
            base = engine.detection_times(vectors)
            base_shards = len(engine.plan(2).shards)

        monkeypatch.setenv("REPRO_SHARD_MB", "0.001")
        with ParallelFaultSim(circuit, faults, jobs=2,
                              min_parallel_faults=1) as engine:
            assert len(engine.plan(2).shards) > base_shards
            bounded = engine.detection_times(vectors)
        assert list(base.items()) == list(bounded.items())
