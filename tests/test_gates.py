"""Gate primitive semantics: scalar truth tables, packed/scalar agreement,
arity validation."""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuit.gates import (
    GATE_ARITY,
    GATE_KINDS,
    ONE,
    X,
    ZERO,
    check_arity,
    eval_gate,
    eval_gate_packed,
    invert,
    value_from_char,
    value_to_char,
)

VALUES = (ZERO, ONE, X)


def _pack_scalar(value, bit):
    """Encode one scalar value into packed planes at position ``bit``."""
    if value == ONE:
        return 1 << bit, 0
    if value == ZERO:
        return 0, 1 << bit
    return 0, 0


def _unpack_scalar(planes, bit):
    ones, zeros = planes
    if ones & (1 << bit):
        return ONE
    if zeros & (1 << bit):
        return ZERO
    return X


# -- scalar truth tables ------------------------------------------------------


class TestScalarTruthTables:
    def test_and_binary(self):
        assert eval_gate("AND", [ONE, ONE]) == ONE
        assert eval_gate("AND", [ONE, ZERO]) == ZERO
        assert eval_gate("AND", [ZERO, ZERO]) == ZERO

    def test_and_controlling_zero_beats_x(self):
        assert eval_gate("AND", [ZERO, X]) == ZERO
        assert eval_gate("AND", [X, ZERO, ONE]) == ZERO

    def test_and_x_dominates_without_control(self):
        assert eval_gate("AND", [ONE, X]) == X

    def test_or_binary(self):
        assert eval_gate("OR", [ZERO, ZERO]) == ZERO
        assert eval_gate("OR", [ZERO, ONE]) == ONE

    def test_or_controlling_one_beats_x(self):
        assert eval_gate("OR", [ONE, X]) == ONE

    def test_or_x(self):
        assert eval_gate("OR", [ZERO, X]) == X

    def test_nand_nor_are_inversions(self):
        for a, b in itertools.product(VALUES, repeat=2):
            assert eval_gate("NAND", [a, b]) == invert(eval_gate("AND", [a, b]))
            assert eval_gate("NOR", [a, b]) == invert(eval_gate("OR", [a, b]))

    def test_not_buf(self):
        assert eval_gate("NOT", [ZERO]) == ONE
        assert eval_gate("NOT", [ONE]) == ZERO
        assert eval_gate("NOT", [X]) == X
        for v in VALUES:
            assert eval_gate("BUF", [v]) == v

    def test_xor_binary(self):
        assert eval_gate("XOR", [ZERO, ONE]) == ONE
        assert eval_gate("XOR", [ONE, ONE]) == ZERO
        assert eval_gate("XOR", [ONE, ONE, ONE]) == ONE

    def test_xor_any_x_is_x(self):
        assert eval_gate("XOR", [X, ONE]) == X
        assert eval_gate("XOR", [ZERO, X]) == X

    def test_xnor_inverts_xor(self):
        for a, b in itertools.product(VALUES, repeat=2):
            assert eval_gate("XNOR", [a, b]) == invert(eval_gate("XOR", [a, b]))

    def test_mux_select_known(self):
        for d0, d1 in itertools.product(VALUES, repeat=2):
            assert eval_gate("MUX", [ZERO, d0, d1]) == d0
            assert eval_gate("MUX", [ONE, d0, d1]) == d1

    def test_mux_select_unknown_agreeing_data(self):
        assert eval_gate("MUX", [X, ONE, ONE]) == ONE
        assert eval_gate("MUX", [X, ZERO, ZERO]) == ZERO

    def test_mux_select_unknown_disagreeing_data(self):
        assert eval_gate("MUX", [X, ZERO, ONE]) == X
        assert eval_gate("MUX", [X, X, ONE]) == X

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            eval_gate("FOO", [ONE])


# -- packed vs scalar agreement --------------------------------------------------


class TestPackedAgreement:
    @pytest.mark.parametrize("kind", sorted(GATE_KINDS))
    def test_exhaustive_agreement_per_kind(self, kind):
        """Every packed evaluation matches scalar semantics bit-for-bit,
        for all 3-valued input combinations up to the max testable arity."""
        low, high = GATE_ARITY[kind]
        arities = {low, min(3, high or 3)}
        arities = {a for a in arities if a >= low and (high is None or a <= high)}
        for arity in sorted(arities):
            combos = list(itertools.product(VALUES, repeat=arity))
            # Pack every combo into its own bit position.
            packed_inputs = []
            for pin in range(arity):
                ones = zeros = 0
                for bit, combo in enumerate(combos):
                    o, z = _pack_scalar(combo[pin], bit)
                    ones |= o
                    zeros |= z
                packed_inputs.append((ones, zeros))
            packed_out = eval_gate_packed(kind, packed_inputs)
            for bit, combo in enumerate(combos):
                expected = eval_gate(kind, list(combo))
                assert _unpack_scalar(packed_out, bit) == expected, (
                    f"{kind}{combo}: packed disagrees with scalar"
                )

    @pytest.mark.parametrize("kind", sorted(GATE_KINDS))
    def test_planes_stay_disjoint(self, kind):
        """No machine may ever be both 0 and 1 (encoding invariant)."""
        low, _high = GATE_ARITY[kind]
        arity = max(low, 2) if kind not in ("NOT", "BUF") else 1
        if kind == "MUX":
            arity = 3
        combos = list(itertools.product(VALUES, repeat=arity))
        packed_inputs = []
        for pin in range(arity):
            ones = zeros = 0
            for bit, combo in enumerate(combos):
                o, z = _pack_scalar(combo[pin], bit)
                ones |= o
                zeros |= z
            packed_inputs.append((ones, zeros))
        ones, zeros = eval_gate_packed(kind, packed_inputs)
        assert ones & zeros == 0


# -- value conversion and arity ----------------------------------------------------


class TestValuesAndArity:
    def test_char_roundtrip(self):
        for char, value in (("0", ZERO), ("1", ONE), ("x", X)):
            assert value_from_char(char) == value
        assert value_from_char("X") == X
        assert value_from_char("-") == X

    def test_value_to_char(self):
        assert value_to_char(ZERO) == "0"
        assert value_to_char(ONE) == "1"
        assert value_to_char(X) == "x"

    def test_bad_char(self):
        with pytest.raises(ValueError):
            value_from_char("2")

    def test_bad_value(self):
        with pytest.raises(ValueError):
            value_to_char(7)

    def test_invert(self):
        assert invert(ZERO) == ONE
        assert invert(ONE) == ZERO
        assert invert(X) == X

    def test_not_is_unary(self):
        with pytest.raises(ValueError):
            check_arity("NOT", 2)

    def test_mux_is_ternary(self):
        check_arity("MUX", 3)
        with pytest.raises(ValueError):
            check_arity("MUX", 2)

    def test_xor_needs_two(self):
        with pytest.raises(ValueError):
            check_arity("XOR", 1)

    def test_and_unbounded(self):
        check_arity("AND", 1)
        check_arity("AND", 17)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            check_arity("LATCH", 1)


# -- property-based: packed == scalar on random wide gates -------------------------


@given(
    kind=st.sampled_from(["AND", "NAND", "OR", "NOR", "XOR", "XNOR"]),
    rows=st.lists(
        st.lists(st.sampled_from(VALUES), min_size=2, max_size=6),
        min_size=1,
        max_size=40,
    ).filter(lambda rows: len({len(r) for r in rows}) == 1),
)
def test_packed_matches_scalar_random(kind, rows):
    """Arbitrary packed widths and arities: each bit lane evaluates as the
    scalar semantics of its row."""
    arity = len(rows[0])
    packed_inputs = []
    for pin in range(arity):
        ones = zeros = 0
        for bit, row in enumerate(rows):
            o, z = _pack_scalar(row[pin], bit)
            ones |= o
            zeros |= z
        packed_inputs.append((ones, zeros))
    packed_out = eval_gate_packed(kind, packed_inputs)
    for bit, row in enumerate(rows):
        assert _unpack_scalar(packed_out, bit) == eval_gate(kind, row)
