"""Cross-module property-based tests (hypothesis) on the pillars the
whole reproduction rests on:

1. packed fault simulation == independent scalar simulation,
2. fault-collapsing equivalence classes behave identically under test,
3. scan insertion preserves functional behaviour,
4. translation length == conventional cycle count,
5. compaction preserves detected fault sets.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atpg.scan_sim import scan_test_detections
from repro.circuit import insert_scan, random_circuit
from repro.circuit.gates import ZERO
from repro.compaction import omission_compact, restoration_compact
from repro.core import translate_test_set
from repro.faults import collapse_faults, enumerate_faults, equivalence_classes
from repro.sim import LogicSimulator, PackedFaultSimulator
from repro.testseq import ScanTest, ScanTestSet, TestSequence
from tests.test_fault_sim import naive_fault_run
from tests.util import random_vectors

circuit_params = st.tuples(
    st.integers(min_value=2, max_value=5),   # inputs
    st.integers(min_value=1, max_value=6),   # flops
    st.integers(min_value=6, max_value=40),  # gates
    st.integers(min_value=0, max_value=10_000),  # seed
)


@settings(max_examples=12, deadline=None)
@given(params=circuit_params, sim_seed=st.integers(0, 1000))
def test_packed_equals_naive_on_random_circuits(params, sim_seed):
    """The packed simulator agrees with the independent scalar reference
    on arbitrary circuits, for a sample of collapsed faults."""
    inputs, flops, gates, seed = params
    circuit = random_circuit("h", inputs, flops, max(gates, flops), seed=seed)
    faults = collapse_faults(circuit)[::4][:12]
    if not faults:
        return
    vectors = random_vectors(circuit, 25, seed=sim_seed)
    packed = PackedFaultSimulator(circuit, faults).run(vectors)
    for fault in faults:
        assert packed.detection_time.get(fault) == \
            naive_fault_run(circuit, fault, vectors)


@settings(max_examples=10, deadline=None)
@given(params=circuit_params, sim_seed=st.integers(0, 1000))
def test_equivalent_faults_detected_together(params, sim_seed):
    """Faults in one equivalence class are detected by exactly the same
    vectors — the defining property of equivalence collapsing."""
    inputs, flops, gates, seed = params
    circuit = random_circuit("h", inputs, flops, max(gates, flops), seed=seed)
    mapping = equivalence_classes(circuit)
    universe = enumerate_faults(circuit)
    vectors = random_vectors(circuit, 30, seed=sim_seed)
    result = PackedFaultSimulator(circuit, universe).run(vectors)
    by_class = {}
    for fault in universe:
        by_class.setdefault(mapping[fault], set()).add(
            result.detection_time.get(fault)
        )
    for representative, times in by_class.items():
        assert len(times) == 1, (
            f"class of {representative} detected inconsistently: {times}"
        )


@settings(max_examples=10, deadline=None)
@given(params=circuit_params, sim_seed=st.integers(0, 1000))
def test_scan_insertion_preserves_function(params, sim_seed):
    """With scan_sel=0 and matching reset state, C_scan's original outputs
    track C cycle for cycle."""
    inputs, flops, gates, seed = params
    if flops == 0:
        flops = 1
    circuit = random_circuit("h", inputs, flops, max(gates, flops), seed=seed)
    sc = insert_scan(circuit)
    rng = random.Random(sim_seed)
    state = tuple(rng.randint(0, 1) for _ in range(flops))
    orig = LogicSimulator(circuit)
    scan = LogicSimulator(sc.circuit)
    orig.reset(state)
    scan.reset(state)
    index = {net: i for i, net in enumerate(sc.circuit.inputs)}
    po_positions = [sc.circuit.outputs.index(po) for po in circuit.outputs]
    for _ in range(15):
        base = tuple(rng.randint(0, 1) for _ in range(inputs))
        vector = [ZERO] * len(sc.circuit.inputs)
        for name, value in zip(circuit.inputs, base):
            vector[index[name]] = value
        expected = orig.step(base)
        got = scan.step(tuple(vector))
        assert tuple(got[i] for i in po_positions) == expected
        assert scan.state == orig.state


@settings(max_examples=10, deadline=None)
@given(
    params=circuit_params,
    test_lens=st.lists(st.integers(min_value=1, max_value=4),
                       min_size=1, max_size=4),
    fill_seed=st.integers(0, 1000),
)
def test_translation_length_is_cycle_count(params, test_lens, fill_seed):
    """len(translate(S)) == S.total_cycles() for arbitrary test sets."""
    inputs, flops, gates, seed = params
    if flops == 0:
        flops = 1
    circuit = random_circuit("h", inputs, flops, max(gates, flops), seed=seed)
    sc = insert_scan(circuit)
    rng = random.Random(fill_seed)
    ts = ScanTestSet(circuit)
    for t_len in test_lens:
        ts.append(ScanTest(
            tuple(rng.randint(0, 1) for _ in range(flops)),
            tuple(tuple(rng.randint(0, 1) for _ in range(inputs))
                  for _ in range(t_len)),
        ))
    seq = translate_test_set(sc, ts)
    assert len(seq) == ts.total_cycles()


@settings(max_examples=6, deadline=None)
@given(params=circuit_params, sim_seed=st.integers(0, 1000))
def test_compaction_preserves_detection(params, sim_seed):
    """Restoration then omission never loses a detected fault, on random
    circuits with random sequences."""
    inputs, flops, gates, seed = params
    circuit = random_circuit("h", inputs, flops, max(gates, flops), seed=seed)
    faults = collapse_faults(circuit)
    sequence = TestSequence.for_circuit(
        circuit, random_vectors(circuit, 40, seed=sim_seed), scan_sel=None
    )
    before = set(
        PackedFaultSimulator(circuit, faults)
        .run(list(sequence)).detection_time
    )
    restored = restoration_compact(circuit, sequence, faults)
    omitted = omission_compact(circuit, restored.sequence, faults)
    after = set(
        PackedFaultSimulator(circuit, faults)
        .run(list(omitted.sequence)).detection_time
    )
    assert before <= after
    assert len(omitted.sequence) <= len(restored.sequence) <= len(sequence)


@settings(max_examples=8, deadline=None)
@given(params=circuit_params, state_seed=st.integers(0, 1000))
def test_scan_test_simulation_state_exact(params, state_seed):
    """Conventional scan-test semantics: detection masks are subsets of
    the fault mask and repeatable."""
    inputs, flops, gates, seed = params
    if flops == 0:
        flops = 1
    circuit = random_circuit("h", inputs, flops, max(gates, flops), seed=seed)
    faults = collapse_faults(circuit)[:20]
    if not faults:
        return
    rng = random.Random(state_seed)
    test = ScanTest(
        tuple(rng.randint(0, 1) for _ in range(flops)),
        (tuple(rng.randint(0, 1) for _ in range(inputs)),),
    )
    sim = PackedFaultSimulator(circuit, faults)
    first = scan_test_detections(sim, test)
    second = scan_test_detections(sim, test)
    assert first == second
    assert first & ~sim.fault_mask == 0


@settings(max_examples=8, deadline=None)
@given(params=circuit_params, fault_pick=st.integers(0, 10_000))
def test_multisite_podem_cubes_detect_sequentially(params, fault_pick):
    """A multi-site PODEM cube over a 3-frame unrolling, X-filled, must
    detect its fault on the real sequential circuit from power-up."""
    from repro.atpg import Podem, replicate_fault, unroll
    from repro.circuit.gates import X as _X

    inputs, flops, gates, seed = params
    if flops == 0:
        flops = 1
    circuit = random_circuit("ms", inputs, flops, max(gates, flops), seed=seed)
    faults = collapse_faults(circuit)
    fault = faults[fault_pick % len(faults)]
    unrolling = unroll(circuit, 3)
    try:
        sites = replicate_fault(unrolling, fault)
    except ValueError:
        return
    podem = Podem(unrolling.circuit, backtrack_limit=300,
                  frozen_inputs=unrolling.frozen_inputs)
    result = podem.run_multi(sites)
    if not result.found:
        return
    rng = random.Random(seed ^ 0x123)
    vectors = [
        tuple(rng.randint(0, 1) if v == _X else v for v in vec)
        for vec in unrolling.split_assignment(result.assignment)
    ]
    sim = PackedFaultSimulator(circuit, [fault])
    assert sim.run(vectors).detection_time, (
        f"multi-site cube for {fault} fails sequentially"
    )
