"""Packed fault simulator, validated against an independent naive
implementation (dual-machine scalar simulation with explicit injection).
"""

import random

import pytest

from repro.circuit import insert_scan, random_circuit, s27, toy_pipeline, toy_seq
from repro.circuit.gates import ONE, X, ZERO, eval_gate
from repro.faults import collapse_faults, enumerate_faults, stem_fault
from repro.sim import LogicSimulator, PackedFaultSimulator

from tests.util import random_vectors


# -- independent reference implementation ---------------------------------------


def naive_fault_run(circuit, fault, vectors):
    """Scalar dual-machine sequential fault simulation.

    Written independently of the packed simulator: one dict per machine,
    explicit fault forcing.  Returns the first detection time or None.
    """
    flops = circuit.flops
    good_state = {f.q: X for f in flops}
    faulty_state = {f.q: X for f in flops}

    def faulty_input(consumer, pin, net, nets):
        value = nets[net]
        if fault.kind == "branch" and fault.consumer == consumer \
                and fault.pin == pin:
            return fault.stuck_at
        return value

    for time, vector in enumerate(vectors):
        good = dict(zip(circuit.inputs, vector))
        faulty = dict(zip(circuit.inputs, vector))
        for flop in flops:
            good[flop.q] = good_state[flop.q]
            faulty[flop.q] = faulty_state[flop.q]
        if fault.kind == "stem" and fault.net in faulty:
            faulty[fault.net] = fault.stuck_at
        for gate in circuit.topo_gates:
            good[gate.output] = eval_gate(
                gate.kind, [good[n] for n in gate.inputs]
            )
            fin = [
                faulty_input(gate.output, pin, net, faulty)
                for pin, net in enumerate(gate.inputs)
            ]
            value = eval_gate(gate.kind, fin)
            if fault.kind == "stem" and fault.net == gate.output:
                value = fault.stuck_at
            faulty[gate.output] = value
        # Detection at primary outputs.
        for po in circuit.outputs:
            g = good[po]
            f = faulty[po]
            if fault.kind == "branch" and fault.consumer == f"PO:{po}":
                f = fault.stuck_at
            if g != X and f != X and g != f:
                return time
        # Latch.
        good_state = {f.q: good[f.d] for f in flops}
        new_faulty = {}
        for flop in flops:
            new_faulty[flop.q] = faulty_input(flop.q, 0, flop.d, faulty)
        faulty_state = new_faulty
    return None


def assert_agrees(circuit, faults, vectors):
    sim = PackedFaultSimulator(circuit, faults)
    result = sim.run(vectors)
    for fault in faults:
        expected = naive_fault_run(circuit, fault, vectors)
        got = result.detection_time.get(fault)
        assert got == expected, (
            f"{fault}: packed={got} naive={expected}"
        )


# -- agreement tests ---------------------------------------------------------------


class TestAgreementWithNaive:
    def test_s27_all_collapsed(self, s27_circuit):
        faults = collapse_faults(s27_circuit)
        assert_agrees(s27_circuit, faults, random_vectors(s27_circuit, 60, seed=2))

    def test_s27_scan_all_collapsed(self, s27_scan):
        c = s27_scan.circuit
        assert_agrees(c, collapse_faults(c), random_vectors(c, 60, seed=3))

    def test_uncollapsed_universe_sample(self, s27_circuit):
        faults = enumerate_faults(s27_circuit)[::3]
        assert_agrees(s27_circuit, faults, random_vectors(s27_circuit, 40, seed=4))

    def test_toy_seq(self, toy_seq_circuit):
        faults = collapse_faults(toy_seq_circuit)
        assert_agrees(toy_seq_circuit, faults,
                      random_vectors(toy_seq_circuit, 50, seed=5))

    def test_random_circuit(self):
        c = random_circuit("agree", 4, 6, 35, seed=77)
        faults = collapse_faults(c)
        assert_agrees(c, faults, random_vectors(c, 50, seed=6))

    def test_vectors_with_x(self, s27_circuit):
        """X input values simulate pessimistically in both implementations."""
        rng = random.Random(9)
        vectors = [
            tuple(rng.choice((ZERO, ONE, X)) for _ in s27_circuit.inputs)
            for _ in range(40)
        ]
        assert_agrees(s27_circuit, collapse_faults(s27_circuit), vectors)


class TestGoodMachine:
    def test_matches_scalar_simulator(self, s27_scan):
        circuit = s27_scan.circuit
        faults = collapse_faults(circuit)
        packed = PackedFaultSimulator(circuit, faults)
        scalar = LogicSimulator(circuit)
        for vector in random_vectors(circuit, 80, seed=11):
            expected = scalar.step(vector)
            packed.step(vector)
            assert packed.good_outputs() == expected
            assert packed.good_state() == scalar.state

    def test_good_machine_never_detected(self, s27_circuit):
        faults = collapse_faults(s27_circuit)
        sim = PackedFaultSimulator(s27_circuit, faults)
        for vector in random_vectors(s27_circuit, 50, seed=12):
            assert sim.step(vector) & 1 == 0


class TestStateManagement:
    def test_reset(self, s27_circuit):
        sim = PackedFaultSimulator(s27_circuit, collapse_faults(s27_circuit))
        sim.step((ONE,) * 4)
        sim.reset()
        assert sim.time == 0
        assert sim.good_state() == (X, X, X)

    def test_save_restore_roundtrip(self, s27_circuit):
        faults = collapse_faults(s27_circuit)
        sim = PackedFaultSimulator(s27_circuit, faults)
        vectors = random_vectors(s27_circuit, 30, seed=13)
        for v in vectors[:10]:
            sim.step(v)
        snapshot = sim.save_state()
        masks_a = [sim.step(v) for v in vectors[10:]]
        sim.restore_state(snapshot)
        masks_b = [sim.step(v) for v in vectors[10:]]
        assert masks_a == masks_b

    def test_load_state_broadcast(self, s27_circuit):
        sim = PackedFaultSimulator(s27_circuit, collapse_faults(s27_circuit))
        sim.load_state((ONE, ZERO, X))
        assert sim.good_state() == (ONE, ZERO, X)
        assert sim.machine_state(3) == (ONE, ZERO, X)

    def test_load_state_wrong_width(self, s27_circuit):
        sim = PackedFaultSimulator(s27_circuit, collapse_faults(s27_circuit))
        with pytest.raises(ValueError):
            sim.load_state((ONE,))

    def test_load_machine_states(self, s27_circuit):
        fault = stem_fault("G11", 0)
        sim = PackedFaultSimulator(s27_circuit, [fault])
        sim.load_machine_states([(ONE, ZERO, ONE), (ZERO, ZERO, ONE)])
        assert sim.machine_state(0) == (ONE, ZERO, ONE)
        assert sim.machine_state(1) == (ZERO, ZERO, ONE)

    def test_load_machine_states_wrong_count(self, s27_circuit):
        sim = PackedFaultSimulator(s27_circuit, [stem_fault("G11", 0)])
        with pytest.raises(ValueError):
            sim.load_machine_states([(X, X, X)])


class TestEffectMasks:
    def test_ff_effects_match_naive_states(self, s27_circuit):
        """ff_effect_masks flags exactly the machines whose flop value is
        the binary opposite of the good machine."""
        faults = collapse_faults(s27_circuit)
        sim = PackedFaultSimulator(s27_circuit, faults)
        vectors = random_vectors(s27_circuit, 25, seed=14)
        # Run the packed sim and record final effect masks.
        for v in vectors:
            sim.step(v)
        masks = sim.ff_effect_masks()
        good_final = sim.good_state()
        for position, fault in enumerate(faults):
            faulty_final = sim.machine_state(position + 1)
            for flop_index in range(3):
                g = good_final[flop_index]
                f = faulty_final[flop_index]
                expected = g != X and f != X and g != f
                got = bool(masks[flop_index] & (1 << (position + 1)))
                assert got == expected

    def test_net_effect_and_good_value(self, s27_circuit):
        fault = stem_fault("G11", 1)
        sim = PackedFaultSimulator(s27_circuit, [fault])
        sim.step((ONE, ONE, ONE, ONE))
        good = sim.good_net_value("G11")
        if good == ZERO:
            assert sim.net_effect_mask("G11") & 2


class TestRunAPI:
    def test_detection_times_are_first(self, s27_scan):
        circuit = s27_scan.circuit
        faults = collapse_faults(circuit)
        sim = PackedFaultSimulator(circuit, faults)
        vectors = random_vectors(circuit, 120, seed=15)
        result = sim.run(vectors)
        # Re-simulate and confirm nothing is detected before its time.
        for fault, t in result.detection_time.items():
            single = PackedFaultSimulator(circuit, [fault])
            r = single.run(vectors[: t + 1])
            assert r.detection_time.get(fault) == t

    def test_coverage_and_partitions(self, s27_scan):
        circuit = s27_scan.circuit
        faults = collapse_faults(circuit)
        sim = PackedFaultSimulator(circuit, faults)
        result = sim.run(random_vectors(circuit, 200, seed=16))
        assert len(result.detected) + len(result.undetected) == len(faults)
        assert result.coverage() == pytest.approx(
            100.0 * len(result.detected) / len(faults)
        )

    def test_detects_all(self, s27_scan):
        circuit = s27_scan.circuit
        faults = collapse_faults(circuit)
        sim = PackedFaultSimulator(circuit, faults)
        vectors = random_vectors(circuit, 300, seed=0)
        assert sim.detects_all(vectors)
        assert not sim.detects_all(vectors[:2])

    def test_stop_when_all_detected(self, s27_scan):
        circuit = s27_scan.circuit
        faults = collapse_faults(circuit)[:5]
        sim = PackedFaultSimulator(circuit, faults)
        vectors = random_vectors(circuit, 300, seed=0)
        result = sim.run(vectors, stop_when_all_detected=True)
        assert result.num_vectors < 300
        assert len(result.detected) == 5

    def test_faults_from_mask(self, s27_circuit):
        faults = collapse_faults(s27_circuit)[:4]
        sim = PackedFaultSimulator(s27_circuit, faults)
        assert sim.faults_from_mask(0) == []
        assert sim.faults_from_mask(0b110) == faults[:2]

    def test_fault_on_unknown_net(self, s27_circuit):
        with pytest.raises(ValueError):
            PackedFaultSimulator(s27_circuit, [stem_fault("ghost", 0)])


class TestSubsetEquivalence:
    def test_subset_simulation_consistent(self, s27_scan):
        """Simulating a subset of faults gives the same detection times as
        the full pack (machines are independent)."""
        circuit = s27_scan.circuit
        faults = collapse_faults(circuit)
        vectors = random_vectors(circuit, 100, seed=17)
        full = PackedFaultSimulator(circuit, faults).run(vectors)
        subset = faults[::5]
        partial = PackedFaultSimulator(circuit, subset).run(vectors)
        for fault in subset:
            assert partial.detection_time.get(fault) == \
                full.detection_time.get(fault)
