"""OpenMetrics rendering and validation (repro.obs.openmetrics)."""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.obs.openmetrics import (
    metric_name,
    parse_openmetrics,
    render_openmetrics,
    write_textfile,
)


def artifact():
    return {
        "schema": "repro.obs.metrics/1",
        "meta": {"circuit": "s27", "backend": "packed", "jobs": 2},
        "counters": {"faultsim.cycles": 1234, "atpg.backtracks": 5},
        "gauges": {"pipeline.generation.coverage_percent": 98.5},
        "histograms": {
            "faultsim.query_cycles": {
                "count": 3, "total": 42.0, "mean": 14.0,
                "min": 2.0, "max": 30.0,
            },
        },
        "spans": [
            {"path": "pipeline.generation", "count": 1,
             "total_seconds": 1.5, "depth": 0},
            {"path": "pipeline.generation/atpg", "count": 1,
             "total_seconds": 1.2, "depth": 1},
        ],
    }


class TestNames:
    def test_dots_become_underscores_with_prefix(self):
        assert metric_name("faultsim.cycles") == "repro_faultsim_cycles"

    def test_invalid_chars_sanitized(self):
        name = metric_name("weird-name with spaces")
        assert parse_openmetrics(
            f"# TYPE {name} gauge\n{name} 1\n# EOF\n")


class TestRender:
    def test_passes_own_format_check(self):
        """The acceptance criterion: rendered text validates."""
        families = parse_openmetrics(render_openmetrics(artifact()))
        assert "repro_faultsim_cycles" in families
        assert families["repro_faultsim_cycles"]["type"] == "counter"

    def test_counters_carry_total_suffix(self):
        text = render_openmetrics(artifact())
        assert "repro_faultsim_cycles_total{" in text
        families = parse_openmetrics(text)
        sample, labels, value = families["repro_faultsim_cycles"][
            "samples"][0]
        assert sample == "repro_faultsim_cycles_total"
        assert value == 1234

    def test_meta_rides_as_labels(self):
        families = parse_openmetrics(render_openmetrics(artifact()))
        _s, labels, _v = families["repro_atpg_backtracks"]["samples"][0]
        assert labels == {"circuit": "s27", "backend": "packed",
                          "jobs": "2"}

    def test_extra_labels_merged(self):
        families = parse_openmetrics(
            render_openmetrics(artifact(), labels={"env": "ci"}))
        _s, labels, _v = families["repro_atpg_backtracks"]["samples"][0]
        assert labels["env"] == "ci"

    def test_bad_label_name_rejected(self):
        with pytest.raises(ValueError, match="invalid label name"):
            render_openmetrics(artifact(), labels={"bad-name": "x"})

    def test_histogram_becomes_summary_plus_bounds(self):
        families = parse_openmetrics(render_openmetrics(artifact()))
        summary = families["repro_faultsim_query_cycles"]
        assert summary["type"] == "summary"
        by_name = {s[0]: s[2] for s in summary["samples"]}
        assert by_name["repro_faultsim_query_cycles_count"] == 3
        assert by_name["repro_faultsim_query_cycles_sum"] == 42.0
        assert families["repro_faultsim_query_cycles_min"][
            "samples"][0][2] == 2.0
        assert families["repro_faultsim_query_cycles_max"][
            "samples"][0][2] == 30.0

    def test_spans_become_phase_gauges(self):
        families = parse_openmetrics(render_openmetrics(artifact()))
        phases = {s[1]["phase"]: s[2]
                  for s in families["repro_phase_seconds"]["samples"]}
        assert phases["pipeline.generation"] == 1.5
        assert phases["pipeline.generation/atpg"] == 1.2
        calls = families["repro_phase_calls"]["samples"]
        assert all(value == 1 for _s, _l, value in calls)

    def test_label_values_escaped(self):
        text = render_openmetrics(
            artifact(), labels={"note": 'say "hi"\nplease\\'})
        families = parse_openmetrics(text)
        _s, labels, _v = families["repro_atpg_backtracks"]["samples"][0]
        assert labels["note"] == 'say "hi"\nplease\\'

    def test_live_session_snapshot_renders(self):
        with obs.session() as telemetry:
            obs.incr("faultsim.cycles", 7)
            with obs.span("pipeline.generation"):
                pass
        families = parse_openmetrics(
            render_openmetrics(obs.metrics_artifact(telemetry)))
        assert "repro_faultsim_cycles" in families
        assert "repro_phase_seconds" in families


class TestValidator:
    def test_missing_eof(self):
        with pytest.raises(ValueError, match="EOF"):
            parse_openmetrics("# TYPE repro_x gauge\nrepro_x 1\n")

    def test_eof_must_be_last(self):
        with pytest.raises(ValueError, match="before end"):
            parse_openmetrics("# EOF\nrepro_x 1\n# EOF\n")

    def test_sample_without_family(self):
        with pytest.raises(ValueError, match="no TYPE family"):
            parse_openmetrics("repro_orphan 1\n# EOF\n")

    def test_counter_sample_needs_total(self):
        bad = ("# TYPE repro_x counter\n# HELP repro_x h\n"
               "repro_x 1\n# EOF\n")
        with pytest.raises(ValueError, match="lacks _total"):
            parse_openmetrics(bad)

    def test_non_numeric_value(self):
        bad = "# TYPE repro_x gauge\nrepro_x banana\n# EOF\n"
        with pytest.raises(ValueError, match="non-numeric"):
            parse_openmetrics(bad)

    def test_malformed_labels(self):
        bad = '# TYPE repro_x gauge\nrepro_x{a=unquoted} 1\n# EOF\n'
        with pytest.raises(ValueError, match="malformed"):
            parse_openmetrics(bad)


class TestTextfile:
    def test_atomic_install(self, tmp_path):
        target = tmp_path / "textfiles" / "repro.prom"
        text = render_openmetrics(artifact())
        write_textfile(target, text)
        assert target.read_text() == text
        assert not list(target.parent.glob("*.tmp*"))


class TestCli:
    def test_export_from_metrics_json(self, tmp_path, capsys):
        source = tmp_path / "m.json"
        source.write_text(json.dumps(artifact()))
        assert main(["metrics-export", str(source)]) == 0
        out = capsys.readouterr().out
        parse_openmetrics(out)
        assert "repro_faultsim_cycles_total" in out

    def test_export_textfile_mode(self, tmp_path, capsys):
        source = tmp_path / "m.json"
        source.write_text(json.dumps(artifact()))
        target = tmp_path / "node.prom"
        assert main(["metrics-export", str(source),
                     "--textfile", str(target),
                     "--label", "env=ci"]) == 0
        families = parse_openmetrics(target.read_text())
        _s, labels, _v = families["repro_atpg_backtracks"]["samples"][0]
        assert labels["env"] == "ci"

    def test_bad_label_spec(self, tmp_path, capsys):
        source = tmp_path / "m.json"
        source.write_text(json.dumps(artifact()))
        assert main(["metrics-export", str(source),
                     "--label", "notkeyvalue"]) == 2

    def test_export_runs_ref(self, tmp_path, capsys):
        from tests.test_history import make_record
        from repro.obs.history import RunIndex

        db = tmp_path / "runs.sqlite"
        RunIndex(db).append(make_record())
        assert main(["metrics-export", "runs:latest",
                     "--run-index", str(db)]) == 0
        families = parse_openmetrics(capsys.readouterr().out)
        assert "repro_faultsim_cycles" in families
