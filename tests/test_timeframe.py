"""Time-frame expansion: unrolling, multi-site PODEM, iterative
deepening sequential ATPG."""

import pytest

from repro.atpg import (
    DETECTED,
    Podem,
    TimeFrameATPG,
    replicate_fault,
    unroll,
)
from repro.atpg.timeframe import frame_net
from repro.circuit import s27, toy_pipeline
from repro.circuit.gates import ONE, X, ZERO
from repro.faults import collapse_faults
from repro.faults.model import branch_fault, stem_fault
from repro.sim import LogicSimulator, PackedFaultSimulator


class TestUnrolling:
    def test_structure(self, s27_circuit):
        u = unroll(s27_circuit, 3)
        c = u.circuit
        assert c.num_state_vars == 0
        # 3 frames x 4 PIs + 3 frozen frame-0 state nets.
        assert c.num_inputs == 3 * 4 + 3
        assert c.num_outputs == 3 * 1
        assert set(u.frozen_inputs) == {
            frame_net(0, q) for q in ("G5", "G6", "G7")
        }

    def test_state_chaining(self, s27_circuit):
        u = unroll(s27_circuit, 2)
        buf = u.circuit.gate_by_output[frame_net(1, "G5")]
        assert buf.kind == "BUF"
        assert buf.inputs == (frame_net(0, "G10"),)

    def test_rejects_combinational(self, toy_comb_circuit):
        with pytest.raises(ValueError):
            unroll(toy_comb_circuit, 2)

    def test_rejects_zero_frames(self, s27_circuit):
        with pytest.raises(ValueError):
            unroll(s27_circuit, 0)

    def test_split_assignment(self, s27_circuit):
        u = unroll(s27_circuit, 2)
        cube = {frame_net(0, "G0"): ONE, frame_net(1, "G3"): ZERO}
        vectors = u.split_assignment(cube)
        assert vectors[0] == (ONE, X, X, X)
        assert vectors[1] == (X, X, X, ZERO)

    def test_frame_of_output(self, s27_circuit):
        u = unroll(s27_circuit, 3)
        assert u.frame_of_output(frame_net(2, "G17")) == 2

    def test_unrolled_matches_sequential_simulation(self, s27_circuit):
        """Simulating the unrolled circuit with a bound initial state
        equals stepping the sequential circuit."""
        import random

        rng = random.Random(3)
        frames = 4
        u = unroll(s27_circuit, frames)
        comb = LogicSimulator(u.circuit)
        seq = LogicSimulator(s27_circuit)
        state = (ONE, ZERO, ONE)
        seq.reset(state)
        vectors = [tuple(rng.randint(0, 1) for _ in range(4))
                   for _ in range(frames)]
        flat = {}
        for k, vec in enumerate(vectors):
            for net, value in zip(s27_circuit.inputs, vec):
                flat[frame_net(k, net)] = value
        for q, value in zip(("G5", "G6", "G7"), state):
            flat[frame_net(0, q)] = value
        outs = comb.step(tuple(flat[n] for n in u.circuit.inputs))
        expected = [seq.step(vec)[0] for vec in vectors]
        for k in range(frames):
            po_index = u.circuit.outputs.index(frame_net(k, "G17"))
            assert outs[po_index] == expected[k]


class TestReplicateFault:
    def test_stem_every_frame(self, s27_circuit):
        u = unroll(s27_circuit, 3)
        sites = replicate_fault(u, stem_fault("G11", 0))
        assert len(sites) == 3
        assert {s.net for s in sites} == {frame_net(k, "G11") for k in range(3)}

    def test_flop_d_branch_skips_last_frame(self, s27_circuit):
        u = unroll(s27_circuit, 3)
        fault = branch_fault("G10", "G5", 0, 1)
        sites = replicate_fault(u, fault)
        assert len(sites) == 2  # frames 0 and 1 feed frames 1 and 2
        assert sites[0].consumer == frame_net(1, "G5")

    def test_po_branch(self, s27_circuit):
        u = unroll(s27_circuit, 2)
        fault = branch_fault("G17", "PO:G17", 0, 1)
        sites = replicate_fault(u, fault)
        assert all(s.consumer.startswith("PO:tf") for s in sites)


class TestMultiSitePodem:
    def test_frozen_inputs_never_assigned(self, s27_circuit):
        u = unroll(s27_circuit, 3)
        podem = Podem(u.circuit, frozen_inputs=u.frozen_inputs)
        sites = replicate_fault(u, stem_fault("G0", 0))
        result = podem.run_multi(sites)
        if result.found:
            assert not set(result.assignment) & set(u.frozen_inputs)

    def test_frozen_must_be_inputs(self, s27_circuit):
        u = unroll(s27_circuit, 1)
        with pytest.raises(ValueError):
            Podem(u.circuit, frozen_inputs=["nonexistent"])

    def test_empty_site_list_rejected(self, toy_comb_circuit):
        with pytest.raises(ValueError):
            Podem(toy_comb_circuit).run_multi([])


class TestTimeFrameATPG:
    def test_pipeline_needs_multiple_frames(self, toy_pipeline_circuit):
        """A fault at the pipeline head needs ~3 frames to reach dout."""
        atpg = TimeFrameATPG(toy_pipeline_circuit, max_frames=6)
        result = atpg.run(stem_fault("stage0", 1))
        assert result.found
        assert result.frames_used >= 3

    def test_vectors_verified_by_fault_simulation(self, toy_pipeline_circuit):
        """Every generated test, X-filled randomly, detects its fault on
        the real sequential circuit from the all-X state."""
        import random

        rng = random.Random(1)
        atpg = TimeFrameATPG(toy_pipeline_circuit, max_frames=6)
        for fault in collapse_faults(toy_pipeline_circuit):
            result = atpg.run(fault)
            if not result.found:
                continue
            vectors = [
                tuple(rng.randint(0, 1) if v == X else v for v in vec)
                for vec in result.vectors
            ]
            sim = PackedFaultSimulator(toy_pipeline_circuit, [fault])
            assert sim.run(vectors).detection_time, (
                f"{fault}: {result.frames_used}-frame test failed to detect"
            )

    def test_s27_verdicts_sound(self, s27_circuit):
        """On non-scan s27 (single PO, unknown initial state) the engine
        reaches the random-simulation detection ceiling, proves a set of
        faults undetectable within the frame budget, and aborts the rest
        honestly.  The untestability proofs are checked empirically: no
        random 8-cycle sequence may detect a fault proven untestable at
        depths 1..8."""
        import random

        atpg = TimeFrameATPG(s27_circuit, max_frames=8,
                             backtrack_limit=2000)
        found, proven, aborted = [], [], []
        for fault in collapse_faults(s27_circuit):
            result = atpg.run(fault)
            if result.found:
                found.append(fault)
            elif result.status == "untestable":
                proven.append(fault)
            else:
                aborted.append(fault)
        # 9 faults is the empirical ceiling of 5000-cycle random
        # simulation on non-scan s27; the deterministic engine reaches it
        # within 8 frames and proves a third of the rest undetectable.
        assert len(found) >= 8
        assert len(proven) >= 5
        assert len(found) + len(proven) + len(aborted) == \
            len(collapse_faults(s27_circuit))

        rng = random.Random(9)
        sim = PackedFaultSimulator(s27_circuit, proven)
        for _trial in range(60):
            vectors = [
                tuple(rng.randint(0, 1) for _ in range(4)) for _ in range(8)
            ]
            result = sim.run(vectors)
            assert not result.detection_time, (
                f"untestability proof contradicted for "
                f"{result.detected[:3]}"
            )

    def test_depth_status_recorded(self, toy_pipeline_circuit):
        atpg = TimeFrameATPG(toy_pipeline_circuit, max_frames=4)
        result = atpg.run(stem_fault("stage0", 1))
        assert set(result.depth_status) <= {1, 2, 3, 4}
        assert result.depth_status[1] != DETECTED

    def test_rejects_combinational(self, toy_comb_circuit):
        with pytest.raises(ValueError):
            TimeFrameATPG(toy_comb_circuit)

    def test_truncates_to_detecting_frame(self, toy_pipeline_circuit):
        atpg = TimeFrameATPG(toy_pipeline_circuit, max_frames=8)
        result = atpg.run(stem_fault("stage0", 1))
        assert result.found
        assert len(result.vectors) == result.frames_used
        assert result.frames_used <= result.frames_tried
