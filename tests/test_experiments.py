"""Experiment suite: specs, calibration, profiles, table runners."""

import pytest

from repro.circuit import insert_scan
from repro.experiments import runner, suite, table5, table6, table7
from repro.experiments.ablations import (
    ablate_compaction,
    ablate_limited_scan,
    ablate_scan_knowledge,
    render_compaction,
    render_limited_scan,
    render_scan_knowledge,
)
from repro.faults import collapse_faults
from repro.reporting import format_table

SMALL = ["s27", "b01", "b02"]


@pytest.fixture(autouse=True, scope="module")
def _shared_runner_cache():
    """Keep memoized flows across this module, clear afterwards."""
    yield
    runner.clear_caches()


class TestSpecs:
    def test_every_paper_circuit_present(self):
        names = {s.name for s in suite.PAPER_CIRCUITS}
        assert {"s208", "s5378", "s35932", "b01", "b11"} <= names
        assert len(suite.PAPER_CIRCUITS) == 26

    def test_reference_tables_consistent(self):
        assert set(suite.PAPER_TABLE5) == {s.name for s in suite.PAPER_CIRCUITS}
        assert set(suite.PAPER_TABLE6) == set(suite.PAPER_TABLE5)
        assert set(suite.PAPER_TABLE7) <= set(suite.PAPER_TABLE6)

    def test_paper_table6_totals(self):
        """The embedded reference data reproduces the paper's totals row
        (circuits with a [26] entry): omit total 7230 (ISCAS) + 3110 (ITC)
        vs 27660 + 3800 cycles."""
        iscas = [n for n, row in suite.PAPER_TABLE6.items()
                 if row[7] is not None and n.startswith("s")]
        itc = [n for n, row in suite.PAPER_TABLE6.items()
               if row[7] is not None and n.startswith("b")]
        assert sum(suite.PAPER_TABLE6[n][4] for n in iscas) == 7230
        assert sum(suite.PAPER_TABLE6[n][7] for n in iscas) == 27660
        assert sum(suite.PAPER_TABLE6[n][4] for n in itc) == 3110
        assert sum(suite.PAPER_TABLE6[n][7] for n in itc) == 3800

    def test_paper_table7_totals(self):
        iscas = [n for n in suite.PAPER_TABLE7 if n.startswith("s")]
        itc = [n for n in suite.PAPER_TABLE7 if n.startswith("b")]
        assert sum(suite.PAPER_TABLE7[n][4] for n in iscas) == 15702
        assert sum(suite.PAPER_TABLE7[n][6] for n in iscas) == 24099
        assert sum(suite.PAPER_TABLE7[n][4] for n in itc) == 2576
        assert sum(suite.PAPER_TABLE7[n][6] for n in itc) == 3800

    def test_profiles_nested(self):
        quick = set(suite.PROFILES["quick"])
        default = set(suite.PROFILES["default"])
        full = set(suite.PROFILES["full"])
        assert quick <= default <= full

    def test_active_profile_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SUITE", "default")
        assert suite.active_profile() == "default"
        assert suite.active_profile("quick") == "quick"

    def test_unknown_profile(self):
        with pytest.raises(ValueError):
            suite.active_profile("gigantic")

    def test_circuit_seed_stable(self):
        assert suite.circuit_seed("s298") == suite.circuit_seed("s298")
        assert suite.circuit_seed("s298") != suite.circuit_seed("s400")


class TestBuildCircuit:
    def test_s27_exact(self):
        c = suite.build_circuit("s27")
        assert c.num_gates == 10

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            suite.build_circuit("s1234567")

    def test_standin_matches_scale(self):
        spec = suite.SPEC_BY_NAME["b01"]
        circuit = suite.build_circuit("b01")
        assert circuit.num_inputs == spec.num_inputs
        assert circuit.num_state_vars == spec.paper_state_vars
        measured = len(collapse_faults(insert_scan(circuit).circuit))
        assert abs(measured - spec.paper_faults) / spec.paper_faults < 0.10

    def test_standin_cached_and_deterministic(self):
        a = suite.build_circuit("b02")
        b = suite.build_circuit("b02")
        assert a is b
        # Fresh calibration gives an equal circuit.
        suite._CALIBRATION_CACHE.pop("b02")
        c = suite.build_circuit("b02")
        assert a == c

    def test_configs_scale_with_tier(self):
        small = suite.atpg_config_for("b01")
        large = suite.atpg_config_for("s5378")
        assert large.candidates_per_step <= small.candidates_per_step
        assert large.initial_random_vectors >= small.initial_random_vectors


class TestTableRunners:
    def test_table5_rows(self):
        rows = table5.collect("quick")
        names = [r.circuit for r in rows]
        assert names == list(suite.PROFILES["quick"])
        for row in rows:
            assert 0 <= row.fcov <= 100
            assert row.effective_fcov >= row.fcov
            assert row.detected + row.redundant <= row.faults
        text = table5.render(rows)
        assert "fcov" in text and "s27" in text

    def test_table6_rows(self):
        rows = table6.collect("quick")
        for row in rows:
            assert row.omit_len[0] <= row.restor_len[0] <= row.test_len[0]
            assert row.omit_len[1] <= row.omit_len[0]
            assert row.baseline_cycles > 0
        text = table6.render(rows)
        assert "total" in text

    def test_table7_rows(self):
        rows = table7.collect("quick")
        for row in rows:
            assert row.test_len[0] == row.baseline_cycles
            assert row.omit_len[0] <= row.test_len[0]
        text = table7.render(rows)
        assert "base cyc" in text

    def test_headline_win_on_totals(self):
        """The reproduction's own Table 6/7 totals must show the paper's
        ordering: compacted limited-scan < conventional cycles."""
        rows6 = table6.collect("quick")
        assert sum(r.omit_len[0] for r in rows6) < \
            sum(r.baseline_cycles for r in rows6)
        rows7 = table7.collect("quick")
        assert sum(r.omit_len[0] for r in rows7) < \
            sum(r.baseline_cycles for r in rows7)

    def test_runner_memoization(self):
        a = runner.generation_result("s27")
        b = runner.generation_result("s27")
        assert a is b
        t = runner.translation_result("s27")
        assert t.baseline is runner.baseline_result("s27")


class TestAblations:
    def test_scan_knowledge_ablation(self):
        rows = ablate_scan_knowledge("quick")
        for row in rows:
            assert row.detected_without <= row.detected_with
        assert "Ablation A" in render_scan_knowledge(rows)

    def test_compaction_ablation(self):
        rows = ablate_compaction("quick")
        for row in rows:
            assert row.restoration_only <= row.raw
            assert row.omission_only <= row.raw
            assert row.both <= row.restoration_only
        assert "Ablation B" in render_compaction(rows)

    def test_limited_scan_ablation(self):
        rows = ablate_limited_scan("quick")
        wins = [r.win for r in rows]
        assert sum(1 for w in wins if w > 1.0) >= len(wins) // 2
        assert "Ablation C" in render_limited_scan(rows)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "n"], [("abc", 1), ("d", 22)])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert lines[-1].endswith("22")

    def test_format_table_none_and_floats(self):
        text = format_table(["a", "b"], [(None, 1.234)])
        assert "NA" in text and "1.23" in text

    def test_format_table_title(self):
        text = format_table(["a"], [(1,)], title="T")
        assert text.splitlines()[0] == "T"


class TestReport:
    def test_build_report_quick(self):
        from repro.experiments.report import build_report

        text = build_report("quick")
        assert "Table 5" in text
        assert "Table 6" in text
        assert "Table 7" in text
        assert "Ablation A" in text
        assert "Ablation D" in text

    def test_write_report(self, tmp_path):
        from repro.experiments.report import write_report

        path = tmp_path / "report.md"
        text = write_report(path, "quick")
        assert path.read_text() == text

    def test_restoration_variant_rows(self):
        from repro.experiments.ablations import ablate_restoration_variants

        rows = ablate_restoration_variants("quick")
        for row in rows:
            assert row.plain <= row.raw
            assert row.overlapped <= row.raw
            assert row.loops_then_omit <= row.raw
