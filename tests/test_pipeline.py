"""End-to-end flows (Sections 2+4 and 3+4) on s27 and synthetics."""

import pytest

from repro.atpg import SeqATPGConfig
from repro.circuit import random_circuit, s27
from repro.core import FlowConfig, generation_flow, translation_flow
from repro.sim import PackedFaultSimulator


@pytest.fixture(scope="module")
def s27_generation():
    return generation_flow(s27(), FlowConfig(seed=1))


@pytest.fixture(scope="module")
def s27_translation():
    return translation_flow(s27(), FlowConfig(seed=1))


class TestGenerationFlow:
    def test_full_coverage(self, s27_generation):
        flow = s27_generation
        assert flow.fault_coverage == 100.0
        assert flow.testable_coverage == 100.0
        assert not flow.untestable

    def test_compaction_monotone(self, s27_generation):
        flow = s27_generation
        raw, restor, omit = (
            flow.raw_stats(), flow.restored_stats(), flow.omitted_stats()
        )
        assert omit.total <= restor.total <= raw.total
        assert omit.scan <= raw.scan

    def test_compacted_sequence_keeps_coverage(self, s27_generation):
        flow = s27_generation
        sim = PackedFaultSimulator(flow.scan_circuit.circuit, flow.faults)
        result = sim.run(list(flow.omitted.sequence.vectors))
        assert set(flow.atpg.detection_time) <= set(result.detection_time)

    def test_limited_scan_operations_present(self, s27_generation):
        """At least one scan run shorter than the chain — the paper's
        limited scan operations arising naturally."""
        flow = s27_generation
        n_sv = flow.circuit.num_state_vars
        runs = flow.omitted.sequence.scan_runs()
        assert any(run < n_sv for run in runs)

    def test_no_compact_flag(self):
        flow = generation_flow(s27(), FlowConfig(seed=1, compact=False))
        assert flow.restored is None
        assert flow.omitted is None
        assert flow.extra_detected == 0

    def test_redundancy_classification_on_synthetic(self):
        """Synthetic circuits carry redundant logic; the classifier proves
        it and the testable coverage lands at (or near) 100%."""
        circuit = random_circuit("p", 3, 10, 70, seed=51)
        flow = generation_flow(
            circuit,
            FlowConfig(seed=1,
                       atpg=SeqATPGConfig(seed=1, initial_random_vectors=32,
                                          max_subseq_len=16, restarts=1)),
        )
        assert flow.untestable, "random logic should have redundancy"
        assert flow.testable_coverage >= 99.0
        assert flow.testable_coverage >= flow.fault_coverage

    def test_elapsed_recorded(self, s27_generation):
        assert s27_generation.elapsed_seconds > 0


class TestTranslationFlow:
    def test_translated_length_equals_baseline_cycles(self, s27_translation):
        flow = s27_translation
        assert flow.translated_stats().total == flow.baseline_cycles

    def test_compaction_strictly_helps(self, s27_translation):
        flow = s27_translation
        assert flow.omitted_stats().total < flow.baseline_cycles

    def test_compaction_monotone(self, s27_translation):
        flow = s27_translation
        assert flow.omitted_stats().total <= flow.restored_stats().total \
            <= flow.translated_stats().total

    def test_translated_sequence_is_binary(self, s27_translation):
        from repro.circuit.gates import X

        for vector in s27_translation.translated:
            assert X not in vector

    def test_baseline_reuse(self, s27_translation):
        """Passing a precomputed baseline skips regeneration."""
        flow2 = translation_flow(s27(), FlowConfig(seed=1),
                                 baseline=s27_translation.baseline)
        assert flow2.baseline is s27_translation.baseline
        assert flow2.baseline_cycles == s27_translation.baseline_cycles

    def test_limited_scan_emerges_from_translation(self, s27_translation):
        """The translated set has only complete scan runs; compaction must
        create at least one limited one (or remove runs entirely)."""
        flow = s27_translation
        n_sv = flow.circuit.num_state_vars
        before = flow.translated.scan_runs()
        after = flow.omitted.sequence.scan_runs()
        assert all(run >= n_sv for run in before)
        assert (not after) or any(run < n_sv for run in after) \
            or len(after) < len(before)


class TestFlowConfig:
    def test_frozen(self):
        cfg = FlowConfig(seed=1)
        with pytest.raises(Exception):
            cfg.seed = 2

    def test_replace(self):
        cfg = FlowConfig(seed=1).replace(num_chains=2)
        assert (cfg.seed, cfg.num_chains) == (1, 2)

    def test_validation(self):
        assert FlowConfig(checkpoint_interval=0).checkpoint_interval == 0
        with pytest.raises(ValueError):
            FlowConfig(checkpoint_interval=-1)
        with pytest.raises(ValueError):
            FlowConfig(max_omission_passes=0)
        with pytest.raises(ValueError):
            FlowConfig(num_chains=0)

    def test_legacy_kwargs_warn_and_match(self, s27_generation):
        """The deprecated keyword shim produces the same flow as the
        equivalent FlowConfig."""
        with pytest.warns(DeprecationWarning):
            legacy = generation_flow(s27(), seed=1)
        assert legacy.omitted_stats() == s27_generation.omitted_stats()
        assert legacy.fault_coverage == s27_generation.fault_coverage

    def test_legacy_positional_seed(self):
        with pytest.warns(DeprecationWarning):
            flow = generation_flow(s27(), 1, compact=False)
        assert flow.restored is None

    def test_legacy_atpg_config_kwarg(self):
        with pytest.warns(DeprecationWarning):
            flow = generation_flow(
                s27(), config=SeqATPGConfig(seed=1), compact=False)
        assert flow.raw is not None

    def test_translation_legacy_kwargs_warn(self):
        with pytest.warns(DeprecationWarning):
            translation_flow(s27(), seed=1, compact=False)

    def test_config_plus_legacy_rejected(self):
        with pytest.raises(TypeError):
            generation_flow(s27(), FlowConfig(seed=1), compact=False)

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(TypeError):
            generation_flow(s27(), bogus=True)
        with pytest.raises(TypeError):
            # generation-only keyword is not valid for translation
            translation_flow(s27(), use_justification=False)


class TestHeadlineClaim:
    def test_generated_beats_complete_scan_baseline(self):
        """Table 6's claim on the exact s27: the compacted limited-scan
        sequence applies in fewer cycles than the conventional baseline,
        at equal-or-better fault coverage."""
        gen = generation_flow(s27(), FlowConfig(seed=1))
        trans = translation_flow(s27(), FlowConfig(seed=1))
        assert gen.omitted_stats().total < trans.baseline_cycles
        sim = PackedFaultSimulator(gen.scan_circuit.circuit, gen.faults)
        coverage = sim.run(list(gen.omitted.sequence.vectors)).coverage()
        assert coverage == 100.0
