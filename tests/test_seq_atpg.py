"""Simulation-based sequential ATPG (the base, scan-agnostic engine)."""

import pytest

from repro.atpg import SeqATPGConfig, SequentialATPG
from repro.circuit import insert_scan, s27
from repro.faults import collapse_faults
from repro.sim import PackedFaultSimulator


def run_atpg(circuit, faults=None, **config_kwargs):
    faults = faults if faults is not None else collapse_faults(circuit)
    config = SeqATPGConfig(seed=7, **config_kwargs)
    return SequentialATPG(circuit, faults, config=config).generate(), faults


class TestBasicGeneration:
    def test_detects_faults_on_s27(self, s27_circuit):
        result, faults = run_atpg(s27_circuit)
        # Non-scan s27 exposes one primary output behind state feedback:
        # simulation-based search plateaus near the random ceiling (9/26
        # even for 5000 random vectors).  The scan-aware layer is what
        # recovers full coverage — see test_scan_aware.
        assert result.detected_count >= len(faults) * 0.3

    def test_detection_times_are_real(self, s27_circuit):
        """Every recorded detection time is confirmed by re-simulation."""
        result, _faults = run_atpg(s27_circuit)
        vectors = list(result.sequence.vectors)
        for fault, t in list(result.detection_time.items())[:20]:
            sim = PackedFaultSimulator(s27_circuit, [fault])
            r = sim.run(vectors)
            assert r.detection_time.get(fault) == t

    def test_accounting_partitions_faults(self, s27_circuit):
        result, faults = run_atpg(s27_circuit)
        assert result.detected_count + len(result.aborted) == len(faults)
        assert not set(result.aborted) & set(result.detection_time)

    def test_sequence_is_binary(self, s27_circuit):
        from repro.circuit.gates import X

        result, _ = run_atpg(s27_circuit)
        for vector in result.sequence:
            assert X not in vector

    def test_deterministic_with_seed(self, s27_circuit):
        a, _ = run_atpg(s27_circuit)
        b, _ = run_atpg(s27_circuit)
        assert a.sequence == b.sequence
        assert a.detection_time == b.detection_time

    def test_different_seeds_differ(self, s27_circuit):
        faults = collapse_faults(s27_circuit)
        r1 = SequentialATPG(s27_circuit, faults,
                            config=SeqATPGConfig(seed=1)).generate()
        r2 = SequentialATPG(s27_circuit, faults,
                            config=SeqATPGConfig(seed=2)).generate()
        assert r1.sequence != r2.sequence

    def test_no_preamble(self, s27_circuit):
        result, faults = run_atpg(s27_circuit, initial_random_vectors=0)
        assert result.detected_count > 0

    def test_empty_fault_list(self, s27_circuit):
        result, _ = run_atpg(s27_circuit, faults=[])
        assert result.detected_count == 0
        assert result.coverage() == 100.0


class TestCompletionHook:
    def test_hook_called_on_failure(self, s27_scan):
        """With zero search effort every fault needs the hook."""
        circuit = s27_scan.circuit
        faults = collapse_faults(circuit)[:5]
        calls = []

        def hook(trace, mini):
            calls.append(trace.fault)
            return None

        config = SeqATPGConfig(seed=1, initial_random_vectors=0,
                               candidates_per_step=1, max_subseq_len=1,
                               restarts=1)
        engine = SequentialATPG(circuit, faults, config=config,
                                completion_hook=hook)
        result = engine.generate()
        # Whatever the single-step search failed on reached the hook.
        assert set(calls) == set(result.aborted) | (
            set(calls) & set(result.detection_time)
        )

    def test_hook_supplied_sequence_used(self, s27_scan):
        """A hook returning a detecting subsequence turns the fault into a
        hook detection."""
        circuit = s27_scan.circuit
        faults = collapse_faults(circuit)
        # Pick a fault and a known detecting run found by simulation.
        from tests.util import random_vectors

        vectors = random_vectors(circuit, 200, seed=3)
        probe = PackedFaultSimulator(circuit, faults)
        times = probe.run(vectors).detection_time
        fault = max(times, key=times.get)  # hardest detected fault

        def hook(trace, mini):
            if trace.fault == fault:
                return vectors[: times[fault] + 1]
            return None

        config = SeqATPGConfig(seed=1, initial_random_vectors=0,
                               candidates_per_step=1, max_subseq_len=1,
                               restarts=1, max_stale_steps=0)
        engine = SequentialATPG(circuit, [fault], config=config,
                                completion_hook=hook)
        result = engine.generate()
        if fault in result.detection_time:
            # Either the 1-step search got lucky or the hook fired.
            assert fault in result.detection_time

    def test_trace_start_states_replayable(self, s27_circuit):
        """The trace's start states reproduce the search context."""
        faults = collapse_faults(s27_circuit)
        seen = {}

        def hook(trace, mini):
            mini.reset()
            mini.load_machine_states(list(trace.start_states))
            # Replaying the prefix must not crash and must keep machine
            # count bookkeeping intact.
            for vector in trace.prefix:
                mini.step(vector)
            seen[trace.fault] = len(trace.prefix)
            return None

        config = SeqATPGConfig(seed=1, initial_random_vectors=4,
                               candidates_per_step=2, max_subseq_len=4,
                               restarts=1)
        SequentialATPG(s27_circuit, faults, config=config,
                       completion_hook=hook).generate()
        # At least one fault went through the hook path.
        assert seen


class TestRepacking:
    def test_repack_preserves_results(self, s27_circuit):
        """Aggressive repacking must not change what gets detected."""
        faults = collapse_faults(s27_circuit)
        eager = SequentialATPG(
            s27_circuit, faults,
            config=SeqATPGConfig(seed=5, repack_factor=0.01),
        ).generate()
        lazy = SequentialATPG(
            s27_circuit, faults,
            config=SeqATPGConfig(seed=5, repack_factor=1e9),
        ).generate()
        assert eager.sequence == lazy.sequence
        assert set(eager.detection_time) == set(lazy.detection_time)
