"""TestSequence container: editing, scan statistics, rendering."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuit.gates import ONE, X, ZERO
from repro.testseq import SequenceStats
from repro.testseq import TestSequence as Sequence

INPUTS = ("a", "b", "scan_sel", "scan_inp")


def seq(vectors):
    return Sequence(INPUTS, vectors, scan_sel="scan_sel")


class TestConstruction:
    def test_basic(self):
        s = seq([(0, 1, 0, 0), (1, 1, 1, 0)])
        assert len(s) == 2
        assert s[0] == (0, 1, 0, 0)

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            seq([(0, 1)])

    def test_unknown_scan_sel(self):
        with pytest.raises(ValueError):
            Sequence(("a",), [], scan_sel="nope")

    def test_for_circuit(self, s27_scan):
        s = Sequence.for_circuit(s27_scan.circuit, [(0,) * 6])
        assert s.scan_sel == "scan_sel"

    def test_for_circuit_without_scan(self, s27_circuit):
        s = Sequence.for_circuit(s27_circuit, [(0,) * 4])
        assert s.scan_sel is None
        assert s.scan_vector_count() == 0

    def test_equality(self):
        assert seq([(0, 0, 0, 0)]) == seq([(0, 0, 0, 0)])
        assert seq([(0, 0, 0, 0)]) != seq([(1, 0, 0, 0)])

    def test_iteration(self):
        s = seq([(0, 0, 0, 0), (1, 1, 1, 1)])
        assert list(s) == [(0, 0, 0, 0), (1, 1, 1, 1)]


class TestEditing:
    def test_extended(self):
        s = seq([(0, 0, 0, 0)]).extended([(1, 1, 1, 1)])
        assert len(s) == 2

    def test_extended_does_not_mutate(self):
        base = seq([(0, 0, 0, 0)])
        base.extended([(1, 1, 1, 1)])
        assert len(base) == 1

    def test_without(self):
        s = seq([(0, 0, 0, 0), (1, 1, 1, 1), (0, 1, 0, 1)]).without(1)
        assert s.vectors == ((0, 0, 0, 0), (0, 1, 0, 1))

    def test_subsequence_sorted_and_deduped(self):
        s = seq([(i % 2,) * 4 for i in range(5)])
        sub = s.subsequence([3, 1, 1])
        assert sub.vectors == (s[1], s[3])

    def test_randomize_x(self):
        s = seq([(X, ONE, X, ZERO)])
        filled = s.randomize_x(random.Random(0))
        assert X not in filled[0]
        assert filled[0][1] == ONE
        assert filled[0][3] == ZERO

    def test_randomize_x_deterministic(self):
        s = seq([(X,) * 4] * 10)
        a = s.randomize_x(random.Random(42))
        b = s.randomize_x(random.Random(42))
        assert a == b


class TestScanStats:
    def test_scan_vector_count(self):
        s = seq([(0, 0, 1, 0), (0, 0, 0, 0), (0, 0, 1, 1)])
        assert s.scan_vector_count() == 2

    def test_stats(self):
        s = seq([(0, 0, 1, 0), (0, 0, 0, 0)])
        assert s.stats() == SequenceStats(total=2, scan=1)
        assert "2 cycles" in str(s.stats())

    def test_scan_runs(self):
        sel = [1, 1, 0, 1, 0, 0, 1, 1, 1]
        s = seq([(0, 0, v, 0) for v in sel])
        assert s.scan_runs() == [2, 1, 3]

    def test_scan_runs_trailing(self):
        s = seq([(0, 0, 1, 0), (0, 0, 1, 0)])
        assert s.scan_runs() == [2]

    def test_no_scan_column(self):
        s = Sequence(("a",), [(1,), (0,)])
        assert s.scan_runs() == []
        assert s.scan_vector_count() == 0


class TestRendering:
    def test_to_table_header_and_rows(self):
        s = seq([(0, 1, X, 0)])
        text = s.to_table()
        assert "scan_sel" in text.splitlines()[0]
        assert "x" in text

    def test_to_table_truncation(self):
        s = seq([(0, 0, 0, 0)] * 10)
        text = s.to_table(max_rows=3)
        assert "7 more" in text

    def test_repr(self):
        assert "2 vectors" in repr(seq([(0,) * 4, (1,) * 4]))


@given(sel=st.lists(st.integers(min_value=0, max_value=1), max_size=60))
def test_scan_runs_partition_scan_count(sel):
    """Run lengths always sum to the scan vector count, and every run is
    maximal (no zero-length runs)."""
    s = seq([(0, 0, v, 0) for v in sel])
    runs = s.scan_runs()
    assert sum(runs) == s.scan_vector_count() == sum(sel)
    assert all(r > 0 for r in runs)
