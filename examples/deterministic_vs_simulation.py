"""Extension study: deterministic time-frame ATPG vs simulation-based
search as the base procedure under the paper's scan-aware layer.

Run:  python examples/deterministic_vs_simulation.py

The paper builds Section 2 on a forward-time *simulation-based* test
generator.  This repository also ships the other classic engine — PODEM
over a time-frame expansion with unknown initial state (HITEC-family,
the paper's refs [17]-[21]).  On non-scan circuits the two have very
different characters:

* the simulation engine is cheap per fault but blind: it plateaus at the
  random-detectability ceiling on circuits with poor observability;
* the deterministic engine *proves* many faults undetectable within its
  frame budget and finds multi-cycle tests search stumbles on, but pays
  exponential worst-case search per depth.

The exact ISCAS-89 s27 (one primary output behind state feedback) shows
the contrast starkly; the scan circuit s27_scan shows how scan dissolves
it (everything becomes one-frame testable).
"""

import random
import time

from repro import (
    SeqATPGConfig,
    SequentialATPG,
    TimeFrameATPG,
    collapse_faults,
    insert_scan,
    s27,
)
from repro import PackedFaultSimulator
from repro.circuit.gates import X


def simulation_engine(circuit, faults):
    started = time.perf_counter()
    result = SequentialATPG(
        circuit, faults, config=SeqATPGConfig(seed=7)
    ).generate()
    return result.detected_count, time.perf_counter() - started


def deterministic_engine(circuit, faults):
    started = time.perf_counter()
    atpg = TimeFrameATPG(circuit, max_frames=8, backtrack_limit=500)
    rng = random.Random(0)
    sim = PackedFaultSimulator(circuit, faults)
    detected = proven = aborted = 0
    for fault in faults:
        outcome = atpg.run(fault)
        if outcome.found:
            # Confirm on the sequential circuit with a random fill.
            vectors = [
                tuple(rng.randint(0, 1) if v == X else v for v in vec)
                for vec in outcome.vectors
            ]
            single = PackedFaultSimulator(circuit, [fault])
            assert single.run(vectors).detection_time, "cube must detect"
            detected += 1
        elif outcome.status == "untestable":
            proven += 1
        else:
            aborted += 1
    return detected, proven, aborted, time.perf_counter() - started


def main() -> None:
    circuit = s27()
    faults = collapse_faults(circuit)
    print(f"non-scan {circuit}: {len(faults)} collapsed faults")

    det_sim, t_sim = simulation_engine(circuit, faults)
    print(f"  simulation-based : {det_sim} detected"
          f"                      ({t_sim:.2f}s)")
    det, proven, aborted, t_det = deterministic_engine(circuit, faults)
    print(f"  time-frame (k<=8): {det} detected, {proven} proven "
          f"undetectable, {aborted} aborted ({t_det:.2f}s)")

    scan_circuit = insert_scan(circuit)
    scan_faults = collapse_faults(scan_circuit.circuit)
    print(f"\nscan {scan_circuit.circuit}: {len(scan_faults)} faults")
    from repro import ScanAwareATPG

    result = ScanAwareATPG(
        scan_circuit, scan_faults, config=SeqATPGConfig(seed=7)
    ).generate()
    print(f"  scan-aware generation: {result.base.detected_count} detected "
          f"({100.0 * result.base.detected_count / len(scan_faults):.1f}%) — "
          "scan turns the hard sequential problem combinational")


if __name__ == "__main__":
    main()
