"""Section 3 scenario: you already have a conventional scan test set —
squeeze its application time without regenerating tests.

Run:  python examples/translate_legacy_testset.py

This is the paper's second experiment (Table 7).  A "legacy" test set is
produced here by the conventional second-approach generator (in practice
it would come from a commercial ATPG); it is then

1. translated into a single C_scan sequence in which every scan cycle is
   explicit (Section 3) — same length as the conventional cycle count,
2. compacted with the non-scan procedures (Section 4), which are free to
   shorten complete scan operations into limited ones,
3. re-fault-simulated to confirm no coverage was lost.
"""

import random

from repro import (
    PackedFaultSimulator,
    SecondApproachATPG,
    SecondApproachConfig,
    collapse_faults,
    insert_scan,
    s27,
    translate_test_set,
)
from repro import (
    CompactionOracle,
    omission_compact,
    restoration_compact,
)


def main() -> None:
    circuit = s27()
    scan_circuit = insert_scan(circuit)

    # --- the "legacy" conventional test set --------------------------------
    legacy = SecondApproachATPG(
        circuit, config=SecondApproachConfig(seed=3)
    ).generate()
    print("legacy test set (complete scan operations only):")
    for index, test in enumerate(legacy.test_set, start=1):
        print(f"  test {index}: {test}")
    print(f"  {legacy.test_set.summary()}")

    # --- Section 3: translate ----------------------------------------------
    translated = translate_test_set(scan_circuit, legacy.test_set)
    translated = translated.randomize_x(random.Random(3))
    print(f"\ntranslated sequence: {translated.stats()} "
          f"(= {legacy.total_cycles()} conventional cycles)")

    # --- Section 4: compact -------------------------------------------------
    faults = collapse_faults(scan_circuit.circuit)
    oracle = CompactionOracle(scan_circuit.circuit, faults)
    restored = restoration_compact(
        scan_circuit.circuit, translated, faults, oracle=oracle
    )
    omitted = omission_compact(
        scan_circuit.circuit, restored.sequence, faults, oracle=oracle
    )
    print(f"after restoration [23]: {restored.sequence.stats()}")
    print(f"after omission    [22]: {omitted.sequence.stats()}")

    # --- verify -------------------------------------------------------------
    before = set(
        PackedFaultSimulator(scan_circuit.circuit, faults)
        .run(list(translated)).detection_time
    )
    after = set(
        PackedFaultSimulator(scan_circuit.circuit, faults)
        .run(list(omitted.sequence)).detection_time
    )
    assert before <= after, "compaction must preserve detections"
    print(f"\ncoverage preserved: {len(before)} faults before, "
          f"{len(after)} after (compaction can only gain)")

    cycles = legacy.total_cycles()
    final = len(omitted.sequence)
    print(f"test application time: {cycles} -> {final} cycles "
          f"({cycles / final:.2f}x faster), no test regeneration needed")


if __name__ == "__main__":
    main()
