"""Quickstart: the paper's whole flow on the exact ISCAS-89 s27.

Run:  python examples/quickstart.py

Steps
-----
1. load s27 and insert a scan chain (scan_sel / scan_inp / scan_out
   become ordinary circuit pins),
2. run the Section 2 generator: a non-scan sequential ATPG on C_scan,
   enhanced with functional scan knowledge,
3. compact with the non-scan procedures (vector restoration [23], then
   vector omission [22]),
4. compare against the conventional complete-scan baseline.
"""

from repro import (
    FlowConfig,
    collapse_faults,
    generation_flow,
    insert_scan,
    s27,
    translation_flow,
)


def main() -> None:
    circuit = s27()
    print(f"circuit: {circuit}")

    scan_circuit = insert_scan(circuit)
    chain = scan_circuit.chains[0]
    print(f"scan circuit: {scan_circuit.circuit}")
    print(f"chain: scan_inp -> {' -> '.join(chain.order)} -> scan_out\n")

    faults = collapse_faults(scan_circuit.circuit)
    print(f"collapsed stuck-at faults (incl. scan muxes): {len(faults)}\n")

    # --- Section 2 generation + Section 4 compaction -----------------------
    # One FlowConfig drives the whole flow; both compaction stages share
    # an incremental fault-sim session that resumes trial simulations
    # from packed-state checkpoints instead of cycle 0.
    config = FlowConfig(seed=1)
    flow = generation_flow(circuit, config)
    print(f"fault coverage: {flow.fault_coverage:.2f}% "
          f"({flow.detected_total}/{flow.num_faults}); "
          f"funct (via scan knowledge): {flow.funct_count}")
    print(f"generated sequence : {flow.raw_stats()}")
    print(f"after restoration  : {flow.restored_stats()}")
    print(f"after omission     : {flow.omitted_stats()}\n")

    final = flow.omitted.sequence
    n_sv = circuit.num_state_vars
    runs = final.scan_runs()
    limited = sum(1 for r in runs if r < n_sv)
    print(f"scan runs in the final sequence: {runs} "
          f"(N_SV = {n_sv}; {limited} are limited scan operations)\n")
    print("final test sequence (one row = one clock cycle):")
    print(final.to_table())

    # --- the conventional baseline -----------------------------------------
    baseline = translation_flow(circuit, config)
    cycles = baseline.baseline_cycles
    print(f"\nconventional complete-scan application: {cycles} cycles")
    print(f"this sequence:                          {len(final)} cycles "
          f"({cycles / len(final):.2f}x faster)")


if __name__ == "__main__":
    main()
