"""Bring your own netlist: full ATPG + compaction on a hand-written
``.bench`` design.

Run:  python examples/custom_circuit_flow.py

The design is a 4-bit Johnson (twisted-ring) counter with a parity
output and a synchronous enable — exactly the kind of small control
block whose scan tests dominate its functional tests in cost.  The
script parses the netlist from an inline ``.bench`` string, so the same
recipe applies to any file on disk via ``repro.load_bench``.
"""

from repro import FlowConfig, generation_flow, parse_bench, translation_flow

JOHNSON = """
# 4-bit Johnson counter with synchronous reset, enable and parity output.
# The reset matters for testability: without a synchronizing input, a
# fault that disables the scan chain (scan_sel stuck-at-0) leaves the
# faulty machine unknown (X) forever and 3-valued simulation can never
# claim a detection -- the classic pessimism of unknown initial states.
INPUT(en)
INPUT(rst)
OUTPUT(parity)
OUTPUT(q3)

q0 = DFF(d0)
q1 = DFF(d1)
q2 = DFF(d2)
q3 = DFF(d3)

nq3   = NOT(q3)
nrst  = NOT(rst)
# shift when enabled, hold otherwise; clear on reset
nen   = NOT(en)
h0    = AND(q0, nen)
s0    = AND(nq3, en)
r0    = OR(h0, s0)
d0    = AND(r0, nrst)
h1    = AND(q1, nen)
s1    = AND(q0, en)
r1    = OR(h1, s1)
d1    = AND(r1, nrst)
h2    = AND(q2, nen)
s2    = AND(q1, en)
r2    = OR(h2, s2)
d2    = AND(r2, nrst)
h3    = AND(q3, nen)
s3    = AND(q2, en)
r3    = OR(h3, s3)
d3    = AND(r3, nrst)

p01    = XOR(q0, q1)
p23    = XOR(q2, q3)
parity = XOR(p01, p23)
"""


def main() -> None:
    circuit = parse_bench(JOHNSON, name="johnson4")
    print(f"parsed: {circuit}")

    config = FlowConfig(seed=7)
    flow = generation_flow(circuit, config)
    print(f"\nfault universe (scan version): {flow.num_faults} collapsed")
    print(f"coverage: {flow.fault_coverage:.2f}% "
          f"(testable: {flow.testable_coverage:.2f}%, "
          f"{len(flow.untestable)} proven redundant)")
    print(f"generated : {flow.raw_stats()}")
    print(f"restored  : {flow.restored_stats()}")
    print(f"omitted   : {flow.omitted_stats()}")

    n_sv = circuit.num_state_vars
    runs = flow.omitted.sequence.scan_runs()
    print(f"\nscan runs: {runs} (chain length {n_sv})")
    print(f"limited scan operations: {sum(1 for r in runs if r < n_sv)}")

    baseline = translation_flow(circuit, config)
    print(f"\nconventional baseline: {baseline.baseline.test_set.summary()}")
    print(f"translating + compacting the baseline itself (Section 3): "
          f"{baseline.baseline_cycles} -> {baseline.omitted_stats().total} cycles")
    final = min(flow.omitted_stats().total, baseline.omitted_stats().total)
    print(f"best test application time: {baseline.baseline_cycles} -> {final} "
          f"cycles ({baseline.baseline_cycles / final:.2f}x)")


if __name__ == "__main__":
    main()
