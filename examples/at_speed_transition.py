"""At-speed extension: transition-fault test generation under the
paper's scan-as-primary-input view.

Run:  python examples/at_speed_transition.py

The paper's baseline [26] is about *at-speed* testing, whose fault model
is the transition (gross-delay) fault: a net too slow to switch within
one clock.  Detecting one needs consecutive at-speed cycles — launch a
transition, capture its effect — which is awkward for conventional scan
flows (special launch-on-shift/launch-on-capture machinery) but entirely
natural here: every cycle of a C_scan test sequence is a real clock
cycle, so any two adjacent vectors can launch and capture, scan shifts
included.

This script generates a transition-fault test sequence for the exact
s27_scan with the same Section 2 generator (just a different packed
simulator plugged in), compacts it with the same Section 4 procedures,
and verifies coverage by independent re-simulation.
"""

from repro import (
    CompactionOracle,
    PackedTransitionSimulator,
    ScanAwareATPG,
    SeqATPGConfig,
    collapse_faults,
    enumerate_transition_faults,
    insert_scan,
    omission_compact,
    restoration_compact,
    s27,
)


def main() -> None:
    scan_circuit = insert_scan(s27())
    faults = enumerate_transition_faults(scan_circuit.circuit)
    print(f"{scan_circuit.circuit}: {len(faults)} transition faults "
          "(slow-to-rise + slow-to-fall per net)")

    atpg = ScanAwareATPG(
        scan_circuit,
        faults,
        config=SeqATPGConfig(seed=1, max_subseq_len=64),
        use_justification=False,   # PODEM speaks stuck-at only
        simulator_factory=PackedTransitionSimulator,
    )
    result = atpg.generate()
    coverage = 100.0 * result.base.detected_count / len(faults)
    print(f"generated: {result.sequence.stats()}, "
          f"TDF coverage {coverage:.1f}%")

    oracle = CompactionOracle(
        scan_circuit.circuit, faults,
        simulator_factory=PackedTransitionSimulator,
    )
    restored = restoration_compact(
        scan_circuit.circuit, result.sequence, faults, oracle=oracle
    )
    omitted = omission_compact(
        scan_circuit.circuit, restored.sequence, faults, oracle=oracle
    )
    print(f"after restoration [23]: {restored.sequence.stats()}")
    print(f"after omission    [22]: {omitted.sequence.stats()}")

    confirm = PackedTransitionSimulator(scan_circuit.circuit, faults)
    final = confirm.run(list(omitted.sequence.vectors))
    print(f"confirmed coverage after compaction: {final.coverage():.1f}%")

    stuck = len(collapse_faults(scan_circuit.circuit))
    print(f"\nfor scale: the same circuit has {stuck} collapsed stuck-at "
          "faults; the at-speed sequence above runs on the identical "
          "tester flow — no launch-on-shift mode bits, no second clock "
          "domain, just cycles.")


if __name__ == "__main__":
    main()
