"""Extension study: how does the number of scan chains change test
application time under the paper's approach?

Run:  python examples/multi_chain_tradeoff.py

The paper notes its procedures "can be easily applied to circuits with
multiple scan chains".  More chains shorten each chain, so a complete
scan costs fewer cycles — but limited scan operations already avoid most
of that cost.  This script measures the compacted sequence length of a
medium synthetic circuit for 1, 2 and 4 balanced chains, next to the
conventional complete-scan baseline at the same chain counts.
"""

from repro import (
    ScanAwareATPG,
    SecondApproachATPG,
    SecondApproachConfig,
    SeqATPGConfig,
    collapse_faults,
    insert_scan,
    random_circuit,
)
from repro import (
    CompactionOracle,
    Podem,
    comb_view,
    omission_compact,
    restoration_compact,
)


def count_redundant(scan_circuit, faults):
    """Provably untestable faults (exhaustive PODEM on the comb view) —
    random synthetic logic carries redundancy that no test can reach."""
    podem = Podem(comb_view(scan_circuit.circuit).circuit,
                  backtrack_limit=20000)
    flop_qs = scan_circuit.circuit.flop_by_q
    return sum(
        1 for f in faults
        if not (f.consumer and f.consumer in flop_qs)
        and podem.run(f).status == "untestable"
    )


def compacted_length(scan_circuit, seed):
    faults = collapse_faults(scan_circuit.circuit)
    result = ScanAwareATPG(
        scan_circuit, faults,
        config=SeqATPGConfig(seed=seed, initial_random_vectors=64,
                             max_subseq_len=24, restarts=1),
    ).generate()
    oracle = CompactionOracle(scan_circuit.circuit, faults)
    restored = restoration_compact(
        scan_circuit.circuit, result.sequence, faults, oracle=oracle
    )
    omitted = omission_compact(
        scan_circuit.circuit, restored.sequence, faults, oracle=oracle
    )
    testable = len(faults) - count_redundant(scan_circuit, faults)
    coverage = 100.0 * result.base.detected_count / max(testable, 1)
    return len(omitted.sequence), coverage


def baseline_cycles(circuit, num_chains, seed):
    """Conventional cost with N balanced chains: a complete scan op takes
    ceil(N_SV / N) cycles."""
    result = SecondApproachATPG(
        circuit, config=SecondApproachConfig(seed=seed)
    ).generate()
    n_sv = circuit.num_state_vars
    per_scan = -(-n_sv // num_chains)  # ceil
    tests = result.test_set
    return sum(per_scan + t.functional_cycles for t in tests) + per_scan


def main() -> None:
    circuit = random_circuit("mc_demo", num_inputs=5, num_flops=12,
                             num_gates=80, seed=29)
    print(f"circuit: {circuit}\n")
    print(f"{'chains':>6}  {'compacted cyc':>13}  {'eff fcov':>8}  "
          f"{'baseline cyc':>12}  {'win':>6}")
    for num_chains in (1, 2, 4):
        scan_circuit = insert_scan(circuit, num_chains=num_chains)
        compacted, coverage = compacted_length(scan_circuit, seed=4)
        base = baseline_cycles(circuit, num_chains, seed=4)
        win = base / compacted if compacted else float("inf")
        print(f"{num_chains:>6}  {compacted:>13}  {coverage:>7.2f}%  "
              f"{base:>12}  {win:>5.2f}x")
    print("\nMore chains help the conventional baseline most — limited scan"
          "\noperations already capture much of that saving with one chain.")


if __name__ == "__main__":
    main()
