"""Shim so `pip install -e .` / `setup.py develop` work in offline
environments that lack the `wheel` package (PEP 660 editable installs
need it; the legacy develop path does not)."""
from setuptools import setup

setup()
